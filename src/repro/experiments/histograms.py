"""Sample histograms (Figures 4 and 5).

Figure 4 shows 50-bin histograms of cycle counts and instruction counts for
10,000 RSU samples of size 2^9; Figure 5 adds the cache-miss histogram for
size 2^18.  Before binning, the paper removes extreme outliers beyond the IQR
outer fences; the same filter is applied here per metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.distribution import DistributionSummary, summarize_distribution
from repro.analysis.histogram import PAPER_BIN_COUNT, Histogram, histogram
from repro.analysis.outliers import remove_outer_fence_outliers
from repro.experiments.campaign import MeasurementTable

__all__ = ["HistogramFigure", "histogram_figure", "SMALL_SIZE_METRICS", "LARGE_SIZE_METRICS"]

#: Metrics shown for the in-cache size (Figure 4).
SMALL_SIZE_METRICS = ("cycles", "instructions")
#: Metrics shown for the out-of-cache size (Figure 5).
LARGE_SIZE_METRICS = ("cycles", "instructions", "l1_misses")


@dataclass(frozen=True)
class HistogramFigure:
    """Histograms and summary statistics of one campaign's metrics."""

    n: int
    sample_count: int
    histograms: dict[str, Histogram]
    summaries: dict[str, DistributionSummary]
    #: Number of observations removed by the outer-fence filter, per metric.
    outliers_removed: dict[str, int]

    def metric_names(self) -> tuple[str, ...]:
        """The metrics included in the figure."""
        return tuple(self.histograms)

    def render(self, width: int = 40) -> str:
        """ASCII rendering of every histogram with its summary line."""
        blocks: list[str] = []
        for name, hist in self.histograms.items():
            summary = self.summaries[name]
            title = (
                f"{name} (n=2^{self.n}, {self.sample_count} samples, "
                f"{self.outliers_removed[name]} outliers removed, "
                f"mean={summary.mean:.4g}, skew={summary.skewness:+.3f})"
            )
            blocks.append(hist.render(width=width, title=title))
        return "\n\n".join(blocks)


def histogram_figure(
    table: MeasurementTable,
    metrics: tuple[str, ...] = SMALL_SIZE_METRICS,
    bins: int = PAPER_BIN_COUNT,
    filter_outliers: bool = True,
) -> HistogramFigure:
    """Build the histogram figure for one campaign table."""
    histograms: dict[str, Histogram] = {}
    summaries: dict[str, DistributionSummary] = {}
    removed: dict[str, int] = {}
    for metric in metrics:
        values = table.column(metric)
        if filter_outliers:
            filt = remove_outer_fence_outliers(values)
            kept = filt.apply(values)
            removed[metric] = filt.removed
        else:
            kept = values
            removed[metric] = 0
        histograms[metric] = histogram(kept, bins=bins)
        summaries[metric] = summarize_distribution(kept)
    return HistogramFigure(
        n=table.n,
        sample_count=len(table),
        histograms=histograms,
        summaries=summaries,
        outliers_removed=removed,
    )
