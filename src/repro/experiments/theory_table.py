"""Algorithm-space size table (Section 2's ``O(7^n)`` remark).

Not a numbered figure, but part of the paper's evaluation context: the number
of WHT algorithms grows roughly like ``7^n``, which is why exhaustive search is
infeasible and model-based pruning matters.  The table lists the exact plan
count, the growth ratio, and the extreme instruction counts for a range of
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.models.theory import algorithm_space_size, extreme_instruction_counts
from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED

__all__ = ["TheoryTable", "theory_table"]


@dataclass(frozen=True)
class TheoryTable:
    """Rows of (n, plan count, growth ratio, min/max instruction count)."""

    rows: tuple[dict, ...]

    def as_rows(self) -> list[list]:
        """Row lists in column order n / count / ratio / min I / max I / spread."""
        return [
            [
                row["n"],
                row["count"],
                row["growth"],
                row["min_instructions"],
                row["max_instructions"],
                row["spread"],
            ]
            for row in self.rows
        ]

    @property
    def headers(self) -> list[str]:
        """Column headers matching :meth:`as_rows`."""
        return ["n", "plans", "W(n)/W(n-1)", "min I", "max I", "max/min"]


def theory_table(
    sizes: Sequence[int],
    max_leaf: int = MAX_UNROLLED,
    include_extremes: bool = True,
) -> TheoryTable:
    """Build the table for the requested size exponents."""
    rows: list[dict] = []
    previous_count: int | None = None
    for n in sorted(int(s) for s in sizes):
        check_positive_int(n, "size exponent")
        count = algorithm_space_size(n, max_leaf=max_leaf)
        growth = count / previous_count if previous_count else float("nan")
        row = {
            "n": n,
            "count": count,
            "growth": growth,
            "min_instructions": float("nan"),
            "max_instructions": float("nan"),
            "spread": float("nan"),
        }
        if include_extremes:
            extremes = extreme_instruction_counts(n, max_leaf=max_leaf)
            row["min_instructions"] = extremes.min_count
            row["max_instructions"] = extremes.max_count
            row["spread"] = extremes.spread
        rows.append(row)
        previous_count = count
    return TheoryTable(rows=tuple(rows))
