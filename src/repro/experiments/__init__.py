"""Experiment harness: one module per figure/table of the paper's evaluation.

The harness is organised around :class:`repro.experiments.runner.ExperimentSuite`,
which owns the simulated machine, the experiment scale and the (cached)
measurement campaigns, and exposes one method per paper figure:

==========  =====================================================  =======================
Paper item  Content                                                Suite method
==========  =====================================================  =======================
Figure 1    cycle ratio canonical/best vs size                     ``figure1()``
Figure 2    instruction ratio canonical/best vs size               ``figure2()``
Figure 3    cache-miss ratio canonical/best vs size                ``figure3()``
Figure 4    histograms of cycles & instructions (small size)       ``figure4()``
Figure 5    histograms of cycles, instructions, misses (large)     ``figure5()``
Figure 6    scatter instructions vs cycles (small), rho            ``figure6()``
Figure 7    scatter instructions vs cycles (large), rho            ``figure7()``
Figure 8    scatter misses vs cycles (large), rho                  ``figure8()``
Figure 9    correlation surface over (alpha, beta)                 ``figure9()``
Figure 10   pruning curves vs instruction count (small)            ``figure10()``
Figure 11   pruning curves vs combined model (large)               ``figure11()``
Section 4   headline correlation coefficients                      ``correlation_table()``
Section 2   algorithm-space size (~O(7^n))                         ``theory_table()``
==========  =====================================================  =======================
"""

from repro.experiments.campaign import MeasurementTable, SampleCampaign
from repro.experiments.canonical import CanonicalSweep, canonical_sweep, ratio_series
from repro.experiments.histograms import HistogramFigure, histogram_figure
from repro.experiments.model_scores import ModelScores, score_plans, with_model_columns
from repro.experiments.scatter_fig import scatter_figure
from repro.experiments.alphabeta import alphabeta_surface
from repro.experiments.pruning import PruningFigure, pruning_figure
from repro.experiments.correlation_table import CorrelationTable, correlation_table
from repro.experiments.theory_table import TheoryTable, theory_table
from repro.experiments.runner import ExperimentSuite
from repro.experiments import paper_values

__all__ = [
    "MeasurementTable",
    "SampleCampaign",
    "CanonicalSweep",
    "canonical_sweep",
    "ratio_series",
    "HistogramFigure",
    "histogram_figure",
    "ModelScores",
    "score_plans",
    "with_model_columns",
    "scatter_figure",
    "alphabeta_surface",
    "PruningFigure",
    "pruning_figure",
    "CorrelationTable",
    "correlation_table",
    "TheoryTable",
    "theory_table",
    "ExperimentSuite",
    "paper_values",
]
