"""Top-level experiment orchestration.

:class:`ExperimentSuite` is the figure layer of the reproduction: one method
per paper figure, plus report rendering.  Campaigns, canonical sweeps and
caching are delegated to a :class:`repro.runtime.session.Session`, which owns
the machine, the scale, the execution backend and the campaign store.  A
suite can be built two ways:

* ``ExperimentSuite(machine=..., scale=...)`` — the historical constructor;
  it creates an internal session with the serial backend and the shared
  in-process store, so existing code behaves exactly as before.
* ``ExperimentSuite.from_session(session)`` (or ``session.suite()``) — bind
  the suite to an explicit session, inheriting its backend and store.

``run_all`` executes everything and ``render_report`` /
``write_experiments_report`` produce the text that EXPERIMENTS.md is built
from.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Any

from repro.config import ExperimentScale, default_scale
from repro.experiments import paper_values
from repro.experiments.alphabeta import alphabeta_surface
from repro.experiments.campaign import MeasurementTable, SampleCampaign
from repro.experiments.canonical import CanonicalSweep
from repro.experiments.correlation_table import CorrelationTable, correlation_table
from repro.experiments.histograms import (
    LARGE_SIZE_METRICS,
    SMALL_SIZE_METRICS,
    HistogramFigure,
    histogram_figure,
)
from repro.experiments.model_scores import with_model_columns
from repro.experiments.pruning import PruningFigure, pruning_figure
from repro.experiments.report import (
    render_correlation_table,
    render_histogram_figure,
    render_pruning_figure,
    render_ratio_figure,
    render_scatter_figure,
    render_surface,
    render_theory_table,
)
from repro.experiments.scatter_fig import scatter_figure
from repro.experiments.theory_table import TheoryTable, theory_table
from repro.machine.configs import default_machine
from repro.machine.machine import SimulatedMachine
from repro.machine.measurement import Measurement
from repro.runtime.backends import SerialBackend
from repro.runtime.session import Session
from repro.runtime.store import default_memory_store
from repro.models.combined import CombinedModel, CorrelationSurface
from repro.models.instruction_count import InstructionCountModel
from repro.runtime.metrics import metric_spec
from repro.analysis.scatter import ScatterData
from repro.wht.canonical import canonical_plans
from repro.wht.plan import Plan

__all__ = ["ExperimentSuite"]


@dataclass
class ExperimentSuite:
    """All of the paper's experiments against one machine and scale.

    .. deprecated:: 1.6
        For whole-evaluation runs prefer the declarative suite runner:
        ``repro.suite(spec).run()`` adds result sinks, a resume manifest
        and multi-machine/seed axes on top of the same sessions (see
        DESIGN.md section 14).  :meth:`to_spec` converts this suite's
        machine and scale into an equivalent spec.  ``ExperimentSuite``
        itself remains supported for direct, figure-at-a-time use.
    """

    #: Machine and scale; ``None`` means "the default" (or, when a session is
    #: given, "inherit from the session").
    machine: SimulatedMachine | None = None
    scale: ExperimentScale | None = None
    dp_max_children: int | None = 2
    #: The runtime session the suite delegates campaigns and sweeps to.  When
    #: omitted, a serial session over the shared in-process store is built
    #: (the historical behaviour).
    session: Session | None = None

    def __post_init__(self) -> None:
        if self.session is None:
            if self.machine is None:
                self.machine = default_machine()
            if self.scale is None:
                self.scale = default_scale()
            self.session = Session(
                machine=self.machine,
                scale=self.scale,
                backend=SerialBackend(),
                store=default_memory_store(),
                dp_max_children=self.dp_max_children,
            )
        else:
            # A session fully determines machine/scale/dp settings; passing a
            # *different* machine or scale alongside it would silently run the
            # figures on the session's values, so reject the conflict.
            if self.machine is not None and self.machine is not self.session.machine:
                raise ValueError(
                    "conflicting arguments: the given machine is not the "
                    "session's machine; pass only session= (or only machine=)"
                )
            if self.scale is not None and self.scale != self.session.scale:
                raise ValueError(
                    "conflicting arguments: the given scale differs from the "
                    "session's scale; pass only session= (or only scale=)"
                )
            self.machine = self.session.machine
            self.scale = self.session.scale
            self.dp_max_children = self.session.dp_max_children
        self._legacy_campaign: SampleCampaign | None = None
        self._references: dict[int, dict[str, Measurement]] = {}
        self._model_tables: dict[str, MeasurementTable] = {}

    @classmethod
    def from_session(cls, session: Session) -> "ExperimentSuite":
        """The figure suite bound to an existing runtime session."""
        return cls(session=session)

    def to_spec(self, name: str = "experiment-suite") -> "Any":
        """This suite's ``run_all`` workload as a declarative suite spec.

        Returns a :class:`repro.suite.spec.SuiteSpec` covering the same
        machine, scale and experiments (figures 1-11 plus the correlation
        and theory tables), ready for ``repro.suite(spec).run()`` — which
        adds sinks, a resume manifest and extra machine/seed axes.
        """
        import dataclasses as _dataclasses

        from repro.runtime.transport import machine_config_to_wire
        from repro.suite.spec import SuiteSpec

        payload = {
            "name": name,
            "machines": [
                {"id": self.machine.config.name, "config": machine_config_to_wire(self.machine.config)}
            ],
            "scale": {
                f.name: getattr(self.scale, f.name)
                for f in _dataclasses.fields(ExperimentScale)
            },
            "seeds": [self.scale.seed],
            "experiments": [f"figure{i}" for i in range(1, 12)] + ["correlations", "theory"],
        }
        return SuiteSpec.from_dict(payload)

    # -- shared data -------------------------------------------------------------

    @property
    def campaign(self) -> SampleCampaign:
        """Legacy campaign runner (prefer ``self.session`` for new code)."""
        if self._legacy_campaign is None:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                self._legacy_campaign = SampleCampaign(self.machine, seed=self.scale.seed)
        return self._legacy_campaign

    def small_table(self) -> MeasurementTable:
        """The in-cache random-sample campaign (paper size 2^9)."""
        return self.session.small_table()

    def large_table(self) -> MeasurementTable:
        """The out-of-cache random-sample campaign (paper size 2^18)."""
        return self.session.large_table()

    def model_table(self, which: str = "large") -> MeasurementTable:
        """A campaign table with the analytic model columns grafted on.

        ``which`` is ``"small"`` or ``"large"``.  The returned table carries
        ``model_instructions``, ``model_l1_misses`` and ``model_combined``
        (this machine's instruction weights, L1 geometry and the paper's
        default combined model) alongside the measured columns, so every
        figure can plot a model metric exactly like a measured one.  Scored
        once per session (memoised) with the vectorised batch models.
        """
        if which not in ("small", "large"):
            raise ValueError(f"which must be 'small' or 'large', got {which!r}")
        table = self._model_tables.get(which)
        if table is None:
            base = self.small_table() if which == "small" else self.large_table()
            table = with_model_columns(
                base,
                instruction_model=InstructionCountModel(
                    self.machine.config.instruction_model
                ),
                miss_model=self.machine.config,
                combined=CombinedModel(),
            )
            self._model_tables[which] = table
        return table

    def _figure_table(self, which: str, metrics: "tuple[str, ...]") -> MeasurementTable:
        """The campaign table able to serve ``metrics`` (model-scored iff needed)."""
        if any(metric.startswith("model_") for metric in metrics):
            return self.model_table(which)
        return self.small_table() if which == "small" else self.large_table()

    def _model_reference_value(self, plan: Plan, metric: str) -> float:
        """Scalar analytic model value of one reference plan for ``metric``.

        Delegates to the runtime metric registry, so reference points are
        computed by the same scorers (same instruction weights, L1 geometry
        and default combined model) as :meth:`model_table`'s columns.
        """
        spec = metric_spec(metric)
        if spec.kind != "model":
            raise ValueError(f"{metric!r} is not a model metric")
        return float(spec.scorer_factory(self.machine.config)([plan])[0])

    def _scatter(self, which: str, x_metric: str, y_metric: str = "cycles") -> ScatterData:
        """One scatter figure; model metrics get model-valued reference points."""
        n = self.scale.small_size if which == "small" else self.scale.large_size
        metrics = (x_metric, y_metric)
        table = self._figure_table(which, metrics)
        references = self.references(n)
        if not any(metric.startswith("model_") for metric in metrics):
            return scatter_figure(
                table, x_metric=x_metric, y_metric=y_metric, references=references
            )
        points = {}
        for name, measurement in references.items():
            point = []
            for metric in metrics:
                if metric.startswith("model_"):
                    point.append(self._model_reference_value(measurement.plan, metric))
                else:
                    point.append(float(getattr(measurement, metric)))
            points[name] = (point[0], point[1])
        return scatter_figure(
            table, x_metric=x_metric, y_metric=y_metric, reference_points=points
        )

    def sweep(self) -> CanonicalSweep:
        """Canonical + DP-best measurements across the Figure 1–3 sizes."""
        return self.session.canonical_sweep()

    def references(self, n: int) -> dict[str, Measurement]:
        """Canonical + best measurements at one size (scatter plot markers)."""
        if n not in self._references:
            plans = canonical_plans(n)
            sweep = self.sweep()
            if n in sweep.best_plans:
                plans["best"] = sweep.best_plans[n]
            self._references[n] = {
                name: self.machine.measure(plan) for name, plan in plans.items()
            }
        return self._references[n]

    # -- figures -----------------------------------------------------------------

    def figure1(self) -> CanonicalSweep:
        """Figure 1: cycle-count ratios of canonical algorithms to the best."""
        return self.sweep()

    def figure2(self) -> CanonicalSweep:
        """Figure 2: instruction-count ratios of canonical algorithms to the best."""
        return self.sweep()

    def figure3(self) -> CanonicalSweep:
        """Figure 3: cache-miss ratios of canonical algorithms to the best."""
        return self.sweep()

    def figure4(self, metrics: "tuple[str, ...]" = SMALL_SIZE_METRICS) -> HistogramFigure:
        """Figure 4: cycle and instruction histograms at the small size.

        ``metrics`` may include the analytic ``model_*`` columns (e.g.
        ``("instructions", "model_instructions")`` to histogram the model
        next to the measurement).
        """
        return histogram_figure(self._figure_table("small", metrics), metrics=metrics)

    def figure5(self, metrics: "tuple[str, ...]" = LARGE_SIZE_METRICS) -> HistogramFigure:
        """Figure 5: cycle, instruction and miss histograms at the large size.

        ``metrics`` may include the analytic ``model_*`` columns.
        """
        return histogram_figure(self._figure_table("large", metrics), metrics=metrics)

    def figure6(self, x_metric: str = "instructions") -> ScatterData:
        """Figure 6: instructions (or a model metric) vs cycles, small size."""
        return self._scatter("small", x_metric)

    def figure7(self, x_metric: str = "instructions") -> ScatterData:
        """Figure 7: instructions (or a model metric) vs cycles, large size."""
        return self._scatter("large", x_metric)

    def figure8(self, x_metric: str = "l1_misses") -> ScatterData:
        """Figure 8: cache misses (or a model metric) vs cycles, large size."""
        return self._scatter("large", x_metric)

    def figure9(self) -> CorrelationSurface:
        """Figure 9: correlation of cycles with alpha*I + beta*M over the grid."""
        return alphabeta_surface(self.large_table())

    def figure10(self, model_metric: str = "instructions") -> PruningFigure:
        """Figure 10: pruning curves vs instruction count at the small size.

        ``model_metric`` selects the x-axis quantity; the paper prunes on the
        measured instruction count, and ``"model_instructions"`` uses the
        analytic model column instead (the quantity a real pruned search has
        before measuring anything).
        """
        table = self._figure_table("small", (model_metric,))
        return pruning_figure(
            table, model_values=table.column(model_metric), model_label=model_metric
        )

    def figure11(self, model_metric: str | None = None) -> PruningFigure:
        """Figure 11: pruning curves vs the optimal combined model, large size.

        By default the x axis is the measured combined model at the
        Figure 9 optimum ``(alpha, beta)``; pass ``model_metric`` (e.g.
        ``"model_combined"``) to prune on an analytic model column instead.
        """
        if model_metric is not None:
            table = self._figure_table("large", (model_metric,))
            return pruning_figure(
                table, model_values=table.column(model_metric), model_label=model_metric
            )
        alpha, beta, _ = self.figure9().best
        return pruning_figure(
            self.large_table(), combined=CombinedModel(alpha=alpha, beta=beta)
        )

    def correlation_summary(self) -> CorrelationTable:
        """Section 4's headline correlation coefficients."""
        return correlation_table(self.small_table(), self.large_table())

    def theory_summary(self, max_size: int | None = None) -> TheoryTable:
        """Section 2's algorithm-space size table."""
        top = max_size if max_size is not None else min(self.scale.large_size, 14)
        return theory_table(range(1, top + 1))

    # -- orchestration -----------------------------------------------------------

    def run_all(self) -> dict[str, Any]:
        """Run every experiment once and return the structured results."""
        return {
            "figure1": self.figure1(),
            "figure2": self.figure2(),
            "figure3": self.figure3(),
            "figure4": self.figure4(),
            "figure5": self.figure5(),
            "figure6": self.figure6(),
            "figure7": self.figure7(),
            "figure8": self.figure8(),
            "figure9": self.figure9(),
            "figure10": self.figure10(),
            "figure11": self.figure11(),
            "correlations": self.correlation_summary(),
            "theory": self.theory_summary(),
        }

    def render_report(self) -> str:
        """Human-readable report covering every figure."""
        sweep = self.sweep()
        sections = [
            f"Machine: {self.machine.config.describe()}",
            f"Scale: {self.scale.describe()}",
            "",
            render_ratio_figure(sweep, "cycles", "Figure 1: cycle-count ratio canonical/best"),
            "",
            render_ratio_figure(
                sweep, "instructions", "Figure 2: instruction-count ratio canonical/best"
            ),
            "",
            render_ratio_figure(
                sweep, "l1_misses", "Figure 3: log10 cache-miss ratio canonical/best", log10=True
            ),
            "",
            "Figure 4: histograms at the small size",
            render_histogram_figure(self.figure4()),
            "",
            "Figure 5: histograms at the large size",
            render_histogram_figure(self.figure5()),
            "",
            render_scatter_figure(self.figure6(), "Figure 6: instructions vs cycles (small size)"),
            "",
            render_scatter_figure(self.figure7(), "Figure 7: instructions vs cycles (large size)"),
            "",
            render_scatter_figure(self.figure8(), "Figure 8: cache misses vs cycles (large size)"),
            "",
            render_surface(self.figure9(), "Figure 9: correlation of cycles with alpha*I + beta*M"),
            "",
            "Figure 10: pruning by instruction count (small size)",
            render_pruning_figure(self.figure10()),
            "",
            "Figure 11: pruning by the combined model (large size)",
            render_pruning_figure(self.figure11()),
            "",
            render_correlation_table(
                self.correlation_summary(),
                paper={
                    "rho_small_instructions": paper_values.PAPER_RHO_SMALL_INSTRUCTIONS,
                    "rho_large_instructions": paper_values.PAPER_RHO_LARGE_INSTRUCTIONS,
                    "rho_large_misses": paper_values.PAPER_RHO_LARGE_MISSES,
                    "rho_large_combined": paper_values.PAPER_RHO_LARGE_COMBINED,
                },
            ),
            "",
            render_theory_table(self.theory_summary()),
        ]
        return "\n".join(sections)

    def write_experiments_report(self, path: str) -> str:
        """Write the full report to ``path`` and return the text."""
        text = self.render_report()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return text
