"""Top-level experiment orchestration.

:class:`ExperimentSuite` owns one simulated machine and one experiment scale,
lazily builds the shared measurement campaigns, and exposes one method per
paper figure.  ``run_all`` executes everything and ``render_report`` /
``write_experiments_report`` produce the text that EXPERIMENTS.md is built
from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import ExperimentScale, default_scale
from repro.experiments import paper_values
from repro.experiments.alphabeta import alphabeta_surface
from repro.experiments.campaign import MeasurementTable, SampleCampaign
from repro.experiments.canonical import CanonicalSweep, canonical_sweep
from repro.experiments.correlation_table import CorrelationTable, correlation_table
from repro.experiments.histograms import (
    LARGE_SIZE_METRICS,
    SMALL_SIZE_METRICS,
    HistogramFigure,
    histogram_figure,
)
from repro.experiments.pruning import PruningFigure, pruning_figure
from repro.experiments.report import (
    render_correlation_table,
    render_histogram_figure,
    render_pruning_figure,
    render_ratio_figure,
    render_scatter_figure,
    render_surface,
    render_theory_table,
)
from repro.experiments.scatter_fig import scatter_figure
from repro.experiments.theory_table import TheoryTable, theory_table
from repro.machine.configs import default_machine
from repro.machine.machine import SimulatedMachine
from repro.machine.measurement import Measurement
from repro.models.combined import CombinedModel, CorrelationSurface
from repro.analysis.scatter import ScatterData
from repro.wht.canonical import canonical_plans

__all__ = ["ExperimentSuite"]


@dataclass
class ExperimentSuite:
    """All of the paper's experiments against one machine and scale."""

    machine: SimulatedMachine = field(default_factory=default_machine)
    scale: ExperimentScale = field(default_factory=default_scale)
    dp_max_children: int | None = 2

    def __post_init__(self) -> None:
        self._campaign = SampleCampaign(self.machine, seed=self.scale.seed)
        self._small_table: MeasurementTable | None = None
        self._large_table: MeasurementTable | None = None
        self._sweep: CanonicalSweep | None = None
        self._references: dict[int, dict[str, Measurement]] = {}

    # -- shared data -------------------------------------------------------------

    @property
    def campaign(self) -> SampleCampaign:
        """The campaign runner shared by all figures."""
        return self._campaign

    def small_table(self) -> MeasurementTable:
        """The in-cache random-sample campaign (paper size 2^9)."""
        if self._small_table is None:
            self._small_table = self._campaign.run(
                self.scale.small_size, self.scale.sample_count
            )
        return self._small_table

    def large_table(self) -> MeasurementTable:
        """The out-of-cache random-sample campaign (paper size 2^18)."""
        if self._large_table is None:
            self._large_table = self._campaign.run(
                self.scale.large_size, self.scale.sample_count
            )
        return self._large_table

    def sweep(self) -> CanonicalSweep:
        """Canonical + DP-best measurements across the Figure 1–3 sizes."""
        if self._sweep is None:
            sizes = range(1, self.scale.canonical_max_size + 1)
            self._sweep = canonical_sweep(
                self.machine, sizes, dp_max_children=self.dp_max_children
            )
        return self._sweep

    def references(self, n: int) -> dict[str, Measurement]:
        """Canonical + best measurements at one size (scatter plot markers)."""
        if n not in self._references:
            plans = canonical_plans(n)
            sweep = self.sweep()
            if n in sweep.best_plans:
                plans["best"] = sweep.best_plans[n]
            self._references[n] = {
                name: self.machine.measure(plan) for name, plan in plans.items()
            }
        return self._references[n]

    # -- figures -----------------------------------------------------------------

    def figure1(self) -> CanonicalSweep:
        """Figure 1: cycle-count ratios of canonical algorithms to the best."""
        return self.sweep()

    def figure2(self) -> CanonicalSweep:
        """Figure 2: instruction-count ratios of canonical algorithms to the best."""
        return self.sweep()

    def figure3(self) -> CanonicalSweep:
        """Figure 3: cache-miss ratios of canonical algorithms to the best."""
        return self.sweep()

    def figure4(self) -> HistogramFigure:
        """Figure 4: cycle and instruction histograms at the small size."""
        return histogram_figure(self.small_table(), metrics=SMALL_SIZE_METRICS)

    def figure5(self) -> HistogramFigure:
        """Figure 5: cycle, instruction and miss histograms at the large size."""
        return histogram_figure(self.large_table(), metrics=LARGE_SIZE_METRICS)

    def figure6(self) -> ScatterData:
        """Figure 6: instructions vs cycles at the small size."""
        return scatter_figure(
            self.small_table(),
            x_metric="instructions",
            y_metric="cycles",
            references=self.references(self.scale.small_size),
        )

    def figure7(self) -> ScatterData:
        """Figure 7: instructions vs cycles at the large size."""
        return scatter_figure(
            self.large_table(),
            x_metric="instructions",
            y_metric="cycles",
            references=self.references(self.scale.large_size),
        )

    def figure8(self) -> ScatterData:
        """Figure 8: cache misses vs cycles at the large size."""
        return scatter_figure(
            self.large_table(),
            x_metric="l1_misses",
            y_metric="cycles",
            references=self.references(self.scale.large_size),
        )

    def figure9(self) -> CorrelationSurface:
        """Figure 9: correlation of cycles with alpha*I + beta*M over the grid."""
        return alphabeta_surface(self.large_table())

    def figure10(self) -> PruningFigure:
        """Figure 10: pruning curves vs instruction count at the small size."""
        return pruning_figure(self.small_table(), model_label="instructions")

    def figure11(self) -> PruningFigure:
        """Figure 11: pruning curves vs the optimal combined model at the large size."""
        alpha, beta, _ = self.figure9().best
        return pruning_figure(
            self.large_table(), combined=CombinedModel(alpha=alpha, beta=beta)
        )

    def correlation_summary(self) -> CorrelationTable:
        """Section 4's headline correlation coefficients."""
        return correlation_table(self.small_table(), self.large_table())

    def theory_summary(self, max_size: int | None = None) -> TheoryTable:
        """Section 2's algorithm-space size table."""
        top = max_size if max_size is not None else min(self.scale.large_size, 14)
        return theory_table(range(1, top + 1))

    # -- orchestration -----------------------------------------------------------

    def run_all(self) -> dict[str, Any]:
        """Run every experiment once and return the structured results."""
        return {
            "figure1": self.figure1(),
            "figure2": self.figure2(),
            "figure3": self.figure3(),
            "figure4": self.figure4(),
            "figure5": self.figure5(),
            "figure6": self.figure6(),
            "figure7": self.figure7(),
            "figure8": self.figure8(),
            "figure9": self.figure9(),
            "figure10": self.figure10(),
            "figure11": self.figure11(),
            "correlations": self.correlation_summary(),
            "theory": self.theory_summary(),
        }

    def render_report(self) -> str:
        """Human-readable report covering every figure."""
        sweep = self.sweep()
        sections = [
            f"Machine: {self.machine.config.describe()}",
            f"Scale: {self.scale.describe()}",
            "",
            render_ratio_figure(sweep, "cycles", "Figure 1: cycle-count ratio canonical/best"),
            "",
            render_ratio_figure(
                sweep, "instructions", "Figure 2: instruction-count ratio canonical/best"
            ),
            "",
            render_ratio_figure(
                sweep, "l1_misses", "Figure 3: log10 cache-miss ratio canonical/best", log10=True
            ),
            "",
            "Figure 4: histograms at the small size",
            render_histogram_figure(self.figure4()),
            "",
            "Figure 5: histograms at the large size",
            render_histogram_figure(self.figure5()),
            "",
            render_scatter_figure(self.figure6(), "Figure 6: instructions vs cycles (small size)"),
            "",
            render_scatter_figure(self.figure7(), "Figure 7: instructions vs cycles (large size)"),
            "",
            render_scatter_figure(self.figure8(), "Figure 8: cache misses vs cycles (large size)"),
            "",
            render_surface(self.figure9(), "Figure 9: correlation of cycles with alpha*I + beta*M"),
            "",
            "Figure 10: pruning by instruction count (small size)",
            render_pruning_figure(self.figure10()),
            "",
            "Figure 11: pruning by the combined model (large size)",
            render_pruning_figure(self.figure11()),
            "",
            render_correlation_table(
                self.correlation_summary(),
                paper={
                    "rho_small_instructions": paper_values.PAPER_RHO_SMALL_INSTRUCTIONS,
                    "rho_large_instructions": paper_values.PAPER_RHO_LARGE_INSTRUCTIONS,
                    "rho_large_misses": paper_values.PAPER_RHO_LARGE_MISSES,
                    "rho_large_combined": paper_values.PAPER_RHO_LARGE_COMBINED,
                },
            ),
            "",
            render_theory_table(self.theory_summary()),
        ]
        return "\n".join(sections)

    def write_experiments_report(self, path: str) -> str:
        """Write the full report to ``path`` and return the text."""
        text = self.render_report()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        return text
