"""Vectorised analytic model scoring for campaign tables and plan batches.

The paper's figures repeatedly need the *analytic* model values of every plan
in a 10,000-sample campaign — instruction counts for the Figure 10 pruning
threshold, combined instruction/miss values for Figure 11, model-vs-measured
scatter checks.  Scoring those one plan at a time through the recursive
models is the per-node Python work the batched engine removes: this module
encodes the whole plan list once
(:func:`repro.wht.encoding.encode_plans`) and evaluates both models with
their vectorised batch paths, which are bit-identical to the scalar
recursions.

:func:`with_model_columns` grafts the scores onto a
:class:`~repro.runtime.table.MeasurementTable` as ordinary columns
(``model_instructions``, ``model_l1_misses``, ``model_combined``), so the
histogram and scatter figures can plot analytic model quantities exactly like
measured ones::

    table = with_model_columns(suite.large_table(), miss_model=miss_model)
    scatter_figure(table, x_metric="model_instructions")
    histogram_figure(table, metrics=("model_instructions",))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.machine.machine import MachineConfig
from repro.models.cache_misses import CacheMissModel
from repro.models.combined import CombinedModel
from repro.models.instruction_count import InstructionCountModel
from repro.runtime.table import MeasurementTable
from repro.wht.encoding import encode_plans
from repro.wht.plan import Plan

__all__ = ["ModelScores", "score_plans", "with_model_columns"]


@dataclass(frozen=True)
class ModelScores:
    """Vectorised analytic model values for one plan batch."""

    #: Instruction-count model value per plan.
    instructions: np.ndarray
    #: Cache-miss model value per plan (``None`` when no miss model given).
    l1_misses: np.ndarray | None

    def combined(self, model: CombinedModel) -> np.ndarray:
        """The combined metric ``alpha * I + beta * M`` per plan."""
        if self.l1_misses is None:
            raise ValueError("combined scores need a miss model; none was scored")
        return model.values(
            self.instructions.astype(float), self.l1_misses.astype(float)
        )


def score_plans(
    plans: Sequence[Plan],
    instruction_model: InstructionCountModel | None = None,
    miss_model: CacheMissModel | None = None,
) -> ModelScores:
    """Score every plan with the analytic models in one vectorised batch.

    One shared encoding feeds both models.  The values equal the scalar
    ``instruction_model.count(plan)`` / ``miss_model.misses(plan)`` exactly.
    """
    encoded = encode_plans(plans)
    model = instruction_model if instruction_model is not None else InstructionCountModel()
    instructions = model.count_batch(encoded)
    misses = miss_model.misses_batch(encoded) if miss_model is not None else None
    return ModelScores(instructions=instructions, l1_misses=misses)


def with_model_columns(
    table: MeasurementTable,
    instruction_model: InstructionCountModel | None = None,
    miss_model: "CacheMissModel | MachineConfig | None" = None,
    combined: CombinedModel | None = None,
) -> MeasurementTable:
    """A copy of ``table`` with analytic model columns added.

    Adds ``model_instructions`` always, ``model_l1_misses`` when a miss model
    (or a :class:`~repro.machine.machine.MachineConfig`, whose L1 geometry
    builds one) is given, and ``model_combined`` when ``combined`` is given
    as well.  The new columns are float arrays aligned with the table's rows,
    so every downstream figure (histograms, scatter, pruning curves) accepts
    them as metrics by name.
    """
    if isinstance(miss_model, MachineConfig):
        miss_model = CacheMissModel.from_machine_config(miss_model, level="l1")
    scores = score_plans(
        table.plans, instruction_model=instruction_model, miss_model=miss_model
    )
    columns = dict(table.columns)
    columns["model_instructions"] = scores.instructions.astype(float)
    if scores.l1_misses is not None:
        columns["model_l1_misses"] = scores.l1_misses.astype(float)
    if combined is not None:
        columns["model_combined"] = scores.combined(combined)
    return MeasurementTable(
        n=table.n, plans=table.plans, columns=columns, machine=table.machine
    )
