"""Percentile pruning figures (Figures 10 and 11).

Figure 10 plots, for size 2^9, the cumulative fraction of sampled algorithms
with performance outside the top ``p`` percent as a function of an
instruction-count threshold; Figure 11 repeats the analysis for size 2^18 with
the combined model ``1 x Instructions + 0.05 x Misses`` on the x axis.  The
figures justify pruning: a threshold well below the maximum already captures
every top-``p`` algorithm, so everything above it need not be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.cdf import PAPER_PERCENTILES, PruningCurve, pruning_curves, safe_pruning_threshold
from repro.experiments.campaign import MeasurementTable
from repro.models.combined import CombinedModel

__all__ = ["PruningFigure", "pruning_figure"]


@dataclass(frozen=True)
class PruningFigure:
    """Pruning curves plus the derived safe-pruning thresholds."""

    n: int
    #: Human-readable name of the model quantity on the x axis.
    model_label: str
    curves: tuple[PruningCurve, ...]
    #: ``safe_thresholds[p]`` = (threshold, fraction of sample discarded).
    safe_thresholds: dict[float, tuple[float, float]]

    def curve(self, percentile: float) -> PruningCurve:
        """The curve for one percentile."""
        for c in self.curves:
            if abs(c.percentile - percentile) < 1e-9:
                return c
        raise KeyError(f"no curve for percentile {percentile}")

    def describe(self) -> str:
        """One line per percentile: safe threshold and pruning payoff."""
        lines = [f"Pruning by {self.model_label} at size 2^{self.n}:"]
        for p, (threshold, discarded) in sorted(self.safe_thresholds.items()):
            lines.append(
                f"  top {p:g}%: keep {self.model_label} <= {threshold:.4g} "
                f"(discards {discarded * 100:.1f}% of the sample, keeps every "
                f"top-{p:g}% algorithm)"
            )
        return "\n".join(lines)


def pruning_figure(
    table: MeasurementTable,
    model_values: Sequence[float] | np.ndarray | None = None,
    model_label: str = "instructions",
    combined: CombinedModel | None = None,
    percentiles: Sequence[float] = PAPER_PERCENTILES,
) -> PruningFigure:
    """Build a pruning figure from a campaign table.

    By default the model quantity is the instruction count (Figure 10).  Pass
    ``combined`` to use ``alpha * I + beta * M`` (Figure 11), or supply
    arbitrary precomputed ``model_values``.
    """
    if model_values is not None and combined is not None:
        raise ValueError("pass either model_values or combined, not both")
    if combined is not None:
        values = combined.values(table.instructions, table.l1_misses)
        label = combined.describe()
    elif model_values is not None:
        values = np.asarray(model_values, dtype=float)
        label = model_label
    else:
        values = table.instructions
        label = model_label
    curves = pruning_curves(values, table.cycles, percentiles=percentiles)
    thresholds = {
        float(p): safe_pruning_threshold(values, table.cycles, percentile=float(p))
        for p in percentiles
    }
    return PruningFigure(
        n=table.n,
        model_label=label,
        curves=tuple(curves),
        safe_thresholds=thresholds,
    )
