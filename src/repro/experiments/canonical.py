"""Canonical-algorithm sweeps (Figures 1, 2 and 3).

For every size ``2^n`` in the sweep, the three canonical algorithms
(iterative, left recursive, right recursive) and the DP-best algorithm are
measured on the simulated machine; the figures plot the ratio of each
canonical algorithm's metric to the best algorithm's metric:

* Figure 1 — cycle-count ratios (the iterative/recursive crossover),
* Figure 2 — instruction-count ratios (iterative lowest everywhere),
* Figure 3 — cache-miss ratios (the paper plots ``log10`` of the ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import math

from repro.machine.machine import SimulatedMachine
from repro.machine.measurement import Measurement
from repro.search.costs import MeasuredCyclesCost
from repro.util.validation import check_positive_int
from repro.wht.canonical import canonical_plans
from repro.wht.dp_search import DPSearch
from repro.wht.plan import MAX_UNROLLED, Plan

__all__ = ["CanonicalSweep", "canonical_sweep", "ratio_series", "CANONICAL_NAMES"]

#: Algorithm names in the order the paper's legends use.
CANONICAL_NAMES = ("iterative", "left", "right")

#: Metrics the sweep records for every algorithm and size.
SWEEP_METRICS = ("cycles", "instructions", "l1_misses", "l2_misses")


@dataclass(frozen=True)
class CanonicalSweep:
    """Measurements of canonical and DP-best algorithms across sizes."""

    sizes: tuple[int, ...]
    #: ``measurements[name][i]`` is the Measurement of algorithm ``name`` at
    #: ``sizes[i]``; names are the canonical names plus ``"best"``.
    measurements: dict[str, tuple[Measurement, ...]]
    #: DP-best plan per size exponent.
    best_plans: dict[int, Plan]
    #: Number of cost evaluations the DP search performed in total.
    dp_evaluations: int = 0

    def metric(self, name: str, metric: str) -> list[float]:
        """One algorithm's metric across the sweep sizes."""
        return [float(getattr(m, metric)) for m in self.measurements[name]]

    def ratios(self, metric: str) -> dict[str, list[float]]:
        """Canonical / best ratios for a metric, keyed by canonical name."""
        best = self.metric("best", metric)
        out: dict[str, list[float]] = {}
        for name in CANONICAL_NAMES:
            values = self.metric(name, metric)
            out[name] = [
                v / b if b > 0 else float("inf") for v, b in zip(values, best)
            ]
        return out

    def log10_ratios(self, metric: str) -> dict[str, list[float]]:
        """``log10`` of the canonical / best ratios (Figure 3's y axis)."""
        return {
            name: [math.log10(r) if r > 0 else float("-inf") for r in series]
            for name, series in self.ratios(metric).items()
        }

    def crossover_size(self, reference: str = "right") -> int | None:
        """Size from which a recursive algorithm overtakes the iterative one.

        Returns the exponent of the first sweep size from which ``reference``
        has a lower cycle count than the iterative algorithm *for every
        remaining size of the sweep*, or ``None`` if the iterative algorithm
        is never permanently overtaken (Figure 1's crossover point).  Requiring
        the lead to persist makes the detection robust to measurement noise at
        tiny sizes, where the canonical plans coincide structurally.
        """
        iterative = self.metric("iterative", "cycles")
        other = self.metric(reference, "cycles")
        crossover: int | None = None
        for size, it_value, other_value in zip(self.sizes, iterative, other):
            if other_value < it_value:
                if crossover is None:
                    crossover = size
            else:
                crossover = None
        return crossover


def canonical_sweep(
    machine: SimulatedMachine,
    sizes: Sequence[int],
    dp_max_children: int | None = 2,
    dp_max_leaf: int = MAX_UNROLLED,
) -> CanonicalSweep:
    """Measure canonical and DP-best algorithms for every size in ``sizes``."""
    size_list = sorted(int(s) for s in sizes)
    if not size_list:
        raise ValueError("canonical_sweep needs at least one size")
    for s in size_list:
        check_positive_int(s, "size exponent")

    # One DP search up to the largest size provides the best plan for every
    # smaller size as a by-product (the DP is bottom-up).
    dp_cost = MeasuredCyclesCost(machine)
    searcher = DPSearch(
        dp_cost,
        max_leaf=dp_max_leaf,
        max_children=dp_max_children,
        include_iterative=True,
    )
    dp_result = searcher.search(size_list[-1])
    best_plans = {s: dp_result.best(s) for s in size_list}

    measurements: dict[str, list[Measurement]] = {
        name: [] for name in (*CANONICAL_NAMES, "best")
    }
    for s in size_list:
        plans = canonical_plans(s)
        plans["best"] = best_plans[s]
        for name, plan in plans.items():
            measurements[name].append(machine.measure(plan))

    return CanonicalSweep(
        sizes=tuple(size_list),
        measurements={name: tuple(ms) for name, ms in measurements.items()},
        best_plans=best_plans,
        dp_evaluations=dp_cost.evaluations,
    )


def ratio_series(sweep: CanonicalSweep, metric: str, log10: bool = False) -> dict[str, list[float]]:
    """The figure's data series: canonical / best ratios for one metric."""
    if metric not in SWEEP_METRICS:
        raise ValueError(f"metric must be one of {SWEEP_METRICS}, got {metric!r}")
    return sweep.log10_ratios(metric) if log10 else sweep.ratios(metric)
