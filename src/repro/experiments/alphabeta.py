"""The (alpha, beta) correlation surface (Figure 9).

Figure 9 plots the Pearson correlation between measured cycle counts and the
combined model ``alpha * instructions + beta * misses`` over a grid of
coefficients (both from 0 to 1 in steps of 0.05); the paper's optimum for size
2^18 is ``alpha = 1.00, beta = 0.05`` with ``rho = 0.92``.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.campaign import MeasurementTable
from repro.models.combined import CorrelationSurface, optimize_combined_model

__all__ = ["alphabeta_surface"]


def alphabeta_surface(
    table: MeasurementTable,
    alphas: Sequence[float] | None = None,
    betas: Sequence[float] | None = None,
    miss_column: str = "l1_misses",
) -> CorrelationSurface:
    """Correlation surface of the combined model over a campaign table."""
    return optimize_combined_model(
        instructions=table.instructions,
        misses=table.column(miss_column),
        cycles=table.cycles,
        alphas=alphas,
        betas=betas,
    )
