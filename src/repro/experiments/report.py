"""Plain-text rendering of experiment results.

Every figure harness returns a structured object; the functions here turn
those objects into the aligned text blocks used by the benchmark output and by
the generated EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.analysis.scatter import ScatterData
from repro.experiments.canonical import CANONICAL_NAMES, CanonicalSweep
from repro.experiments.correlation_table import CorrelationTable
from repro.experiments.histograms import HistogramFigure
from repro.experiments.pruning import PruningFigure
from repro.experiments.theory_table import TheoryTable
from repro.models.combined import CorrelationSurface
from repro.util.tables import format_series, format_table

__all__ = [
    "render_ratio_figure",
    "render_histogram_figure",
    "render_scatter_figure",
    "render_surface",
    "render_pruning_figure",
    "render_correlation_table",
    "render_theory_table",
]


def render_ratio_figure(
    sweep: CanonicalSweep,
    metric: str,
    title: str,
    log10: bool = False,
) -> str:
    """Figures 1–3: one row per size, one column per canonical algorithm."""
    series = sweep.log10_ratios(metric) if log10 else sweep.ratios(metric)
    columns = {f"{name}/best": series[name] for name in CANONICAL_NAMES}
    rendered = format_series(list(sweep.sizes), columns, x_label="n", title=title)
    crossover = sweep.crossover_size("right")
    footer = (
        f"\nfirst size where right recursive beats iterative (cycles): "
        f"{'n=' + str(crossover) if crossover is not None else 'not within sweep'}"
    )
    return rendered + footer


def render_histogram_figure(figure: HistogramFigure, width: int = 36) -> str:
    """Figures 4–5: stacked ASCII histograms."""
    return figure.render(width=width)


def render_scatter_figure(data: ScatterData, title: str) -> str:
    """Figures 6–8: correlation plus reference-point table."""
    lines = [
        title,
        f"samples: {data.count}",
        f"Pearson correlation rho({data.x_label}, {data.y_label}) = {data.correlation:.3f}",
    ]
    if data.references:
        rows = []
        for name, (x, y) in data.references.items():
            note = " (outside sample range)" if data.reference_outside_range(name) else ""
            rows.append([name, x, y, note])
        lines.append(
            format_table([data.x_label, data.y_label, "", ""], [[r[1], r[2], r[0], r[3]] for r in rows])
        )
    return "\n".join(lines)


def render_surface(surface: CorrelationSurface, title: str) -> str:
    """Figure 9: the correlation surface maximum and a coarse grid view."""
    alpha, beta, rho = surface.best
    lines = [
        title,
        f"maximum rho = {rho:.3f} at alpha = {alpha:.2f}, beta = {beta:.2f}",
        "",
        "rho at selected grid points (rows alpha, columns beta):",
    ]
    alpha_idx = [i for i in range(0, surface.alphas.shape[0], max(1, surface.alphas.shape[0] // 5))]
    beta_idx = [j for j in range(0, surface.betas.shape[0], max(1, surface.betas.shape[0] // 5))]
    headers = ["alpha\\beta"] + [f"{surface.betas[j]:.2f}" for j in beta_idx]
    rows = []
    for i in alpha_idx:
        row = [f"{surface.alphas[i]:.2f}"]
        for j in beta_idx:
            value = surface.rho[i, j]
            row.append("nan" if not np.isfinite(value) else f"{value:.3f}")
        rows.append(row)
    lines.append(format_table(headers, rows))
    return "\n".join(lines)


def render_pruning_figure(figure: PruningFigure, points: int = 8) -> str:
    """Figures 10–11: sampled curve values plus the safe thresholds."""
    lines = [figure.describe(), ""]
    for curve in figure.curves:
        total = curve.thresholds.shape[0]
        idx = np.unique(np.linspace(0, total - 1, num=min(points, total)).astype(int))
        rows = [
            [float(curve.thresholds[i]), float(curve.cumulative[i]), float(curve.captured_top[i])]
            for i in idx
        ]
        lines.append(
            format_table(
                [figure.model_label, "P(<=t, outside top p%)", "fraction of top p% captured"],
                rows,
                title=f"percentile p = {curve.percentile:g}% (limit {curve.limit:.2f})",
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_correlation_table(table: CorrelationTable, paper: Mapping[str, float] | None = None) -> str:
    """Section 4 headline numbers, optionally alongside the paper's values."""
    headers = ["quantity", "reproduced"]
    if paper:
        headers.append("paper")
    rows = []
    paper_keys = [
        "rho_small_instructions",
        "rho_large_instructions",
        "rho_large_misses",
        "rho_large_combined",
    ]
    for (description, value), key in zip(table.as_rows(), paper_keys):
        row = [description, f"{value:.3f}"]
        if paper:
            row.append(f"{paper.get(key, float('nan')):.2f}")
        rows.append(row)
    ordering = "holds" if table.satisfies_paper_ordering() else "DOES NOT hold"
    return (
        format_table(headers, rows, title="Headline correlation coefficients")
        + f"\npaper's qualitative ordering {ordering}"
    )


def render_theory_table(table: TheoryTable) -> str:
    """Algorithm-space size and instruction-count extremes."""
    return format_table(table.headers, table.as_rows(), title="WHT algorithm space")
