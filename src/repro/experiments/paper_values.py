"""The numbers the paper reports, collected for comparison.

Every figure harness compares the reproduced *shape* against the paper's
reported values; the constants live here so EXPERIMENTS.md and the tests quote
a single source.  Values are transcribed from the paper text and captions
(Andrews & Johnson, IPPS 2007).
"""

from __future__ import annotations

__all__ = [
    "PAPER_SMALL_SIZE",
    "PAPER_LARGE_SIZE",
    "PAPER_SAMPLE_COUNT",
    "PAPER_RHO_SMALL_INSTRUCTIONS",
    "PAPER_RHO_LARGE_INSTRUCTIONS",
    "PAPER_RHO_LARGE_MISSES",
    "PAPER_RHO_LARGE_COMBINED",
    "PAPER_BEST_ALPHA",
    "PAPER_BEST_BETA",
    "PAPER_CROSSOVER_SIZE",
    "PAPER_L1_BOUNDARY_SIZE",
    "PAPER_PRUNING_EXAMPLE",
    "PAPER_MACHINE",
    "PAPER_HISTOGRAM_BINS",
    "PAPER_PERCENTILES",
    "EXPECTED_SHAPES",
]

#: Transform sizes of the two sampling campaigns (exponents of 2).
PAPER_SMALL_SIZE = 9
PAPER_LARGE_SIZE = 18

#: Random samples per campaign.
PAPER_SAMPLE_COUNT = 10_000

#: Correlation between instruction count and cycles for the in-L1 size (Fig. 6).
PAPER_RHO_SMALL_INSTRUCTIONS = 0.96

#: Correlation between instruction count and cycles for the out-of-L1 size (Fig. 7).
PAPER_RHO_LARGE_INSTRUCTIONS = 0.77

#: Correlation between L1 cache misses and cycles for the out-of-L1 size (Fig. 8).
PAPER_RHO_LARGE_MISSES = 0.66

#: Correlation of the optimal combined model for the out-of-L1 size (Fig. 9).
PAPER_RHO_LARGE_COMBINED = 0.92

#: Optimal combined-model coefficients on the paper's 0.05-step grid (Fig. 9).
PAPER_BEST_ALPHA = 1.00
PAPER_BEST_BETA = 0.05

#: Size exponent at which recursive algorithms overtake the iterative one
#: (Figure 1: "the cross over occurs at the L2 cache boundary").
PAPER_CROSSOVER_SIZE = 18

#: Size exponent of the L1 boundary on the paper's Opteron (Figure 3: the
#: iterative algorithm has the fewest misses up to this size).
PAPER_L1_BOUNDARY_SIZE = 14

#: The pruning example of Figure 10: to stay within 5% of the best at size
#: 2^9, algorithms with more than 7e4 instructions can be discarded.
PAPER_PRUNING_EXAMPLE = {"size": 9, "percentile": 5.0, "instruction_threshold": 7e4}

#: Hardware and toolchain of the paper's measurements.
PAPER_MACHINE = {
    "cpu": "AMD Opteron 244, 1.8 GHz, single core, 64-bit",
    "l1": "64 KB, 2-way set associative",
    "l2": "1 MB, 16-way set associative",
    "counters": "PAPI 3.x",
    "compiler": "gcc 3.4.4 -march=opteron -m64 -O2 -fomit-frame-pointer -fstrict-aliasing",
}

#: Histogram bin count used in Figures 4 and 5.
PAPER_HISTOGRAM_BINS = 50

#: Performance percentiles plotted in Figures 10 and 11.
PAPER_PERCENTILES = (1.0, 5.0, 10.0)

#: The qualitative claims ("shapes") each experiment is expected to reproduce;
#: EXPERIMENTS.md reports pass/fail for each.
EXPECTED_SHAPES = {
    "figure1": "iterative fastest until the L2 boundary; right recursive overtakes it "
    "beyond the boundary and beats the left recursive algorithm",
    "figure2": "iterative has the lowest instruction count at every size; left recursive "
    "the highest",
    "figure3": "canonical algorithms have comparable (cold) misses below the L1 boundary; "
    "beyond it the iterative algorithm no longer has the fewest misses",
    "figure4": "cycle and instruction histograms have very similar shapes for the in-cache size",
    "figure5": "the cycle histogram acquires skew that the instruction histogram lacks, "
    "attributable to the cache-miss distribution",
    "figure6": "high positive correlation between instructions and cycles in cache",
    "figure7": "the instruction/cycle correlation drops out of cache",
    "figure8": "misses alone correlate more weakly than instructions",
    "figure9": "a linear combination with a small beta restores a correlation close to the "
    "in-cache level; the optimum sits at alpha=1 with small beta",
    "figure10": "a threshold well below the maximum instruction count keeps every top-p% "
    "algorithm while discarding a substantial tail",
    "figure11": "the same pruning works out of cache once misses are included in the model",
}
