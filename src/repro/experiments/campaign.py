"""Measurement campaigns — legacy surface over :mod:`repro.runtime`.

The campaign machinery now lives in the runtime layer: plans-to-work-units in
:mod:`repro.runtime.campaigns`, execution in :mod:`repro.runtime.backends`,
result durability in :mod:`repro.runtime.store`, and the table type in
:mod:`repro.runtime.table`.  This module keeps the historical import surface
working:

* :class:`MeasurementTable` and ``TABLE_COLUMNS`` are re-exported unchanged;
* :class:`SampleCampaign` is a deprecation shim that delegates to the runtime
  (serial backend, shared in-process store) — new code should use
  :func:`repro.session` instead;
* :func:`clear_campaign_cache` clears the shared in-process store.

The old cache keyed on ``(machine name, noise sigma, ...)`` and therefore
confused two machines sharing a name but differing in cache geometry or
instruction weights; the runtime store keys on a content hash of the *full*
machine configuration, so that collision is gone.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable

from repro.machine.machine import SimulatedMachine
from repro.runtime.campaigns import campaign_key, measure_plan_list, run_campaign
from repro.runtime.store import CampaignKey, NullStore, default_memory_store
from repro.runtime.table import TABLE_COLUMNS, MeasurementTable
from repro.wht.plan import MAX_UNROLLED, Plan
from repro.wht.random_plans import RSUSampler

__all__ = ["MeasurementTable", "SampleCampaign", "clear_campaign_cache", "TABLE_COLUMNS"]


def clear_campaign_cache() -> None:
    """Drop all cached campaign tables (used by tests and the benchmarks)."""
    default_memory_store().clear()


@dataclass
class SampleCampaign:
    """Runs RSU random samples through a simulated machine.

    .. deprecated::
        ``SampleCampaign`` is a compatibility shim over the runtime layer;
        use ``repro.session(...)`` for new code, which additionally supports
        multiprocess/batched execution and persistent stores.
    """

    machine: SimulatedMachine
    seed: int = 20070122
    max_leaf: int = MAX_UNROLLED
    max_children: int | None = None
    use_cache: bool = True

    def __post_init__(self) -> None:
        warnings.warn(
            "SampleCampaign is deprecated; use repro.session(...) which adds "
            "pluggable execution backends and persistent campaign stores",
            DeprecationWarning,
            stacklevel=3,
        )

    def _store(self):
        return default_memory_store() if self.use_cache else NullStore()

    def sampler(self) -> RSUSampler:
        """The RSU sampler used for plan generation."""
        return RSUSampler(max_leaf=self.max_leaf, max_children=self.max_children)

    def _cache_key(self, n: int, count: int) -> CampaignKey:
        """The store key for one campaign (full machine-config hash)."""
        return campaign_key(
            self.machine,
            n,
            count,
            self.seed,
            max_leaf=self.max_leaf,
            max_children=self.max_children,
        )

    def run(self, n: int, count: int) -> MeasurementTable:
        """Measure ``count`` RSU samples of size ``2^n``."""
        return run_campaign(
            self.machine,
            n,
            count,
            seed=self.seed,
            max_leaf=self.max_leaf,
            max_children=self.max_children,
            store=self._store(),
        )

    def measure_plans(self, plans: Iterable[Plan], tag: str = "explicit") -> MeasurementTable:
        """Measure an explicit list of plans (all of one size)."""
        return measure_plan_list(self.machine, plans, seed=self.seed, tag=tag)
