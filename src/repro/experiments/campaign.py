"""Measurement campaigns: random samples of plans run through the machine.

A campaign is the reproduction's analogue of the paper's "10,000 random
samples of size 2^9 / 2^18 measured with PAPI": draw plans from the RSU
distribution, measure each one on the simulated machine, and collect the
counters into a column-oriented :class:`MeasurementTable`.

Campaigns are deterministic given (machine configuration, size, sample count,
seed): each sample's cycle-noise draw uses a seed derived from the campaign
seed and the sample index, so the same table is produced regardless of
execution order or interleaving with other campaigns.  Completed campaigns are
cached in-process because several figures share the same underlying sample
(Figures 5, 7, 8, 9 and 11 all analyse the large-size campaign).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.machine.machine import SimulatedMachine
from repro.machine.measurement import Measurement
from repro.util.rng import RandomState, as_generator, derive_seed
from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED, Plan
from repro.wht.random_plans import RSUSampler

__all__ = ["MeasurementTable", "SampleCampaign", "clear_campaign_cache"]

#: Column names exposed by :class:`MeasurementTable`.
TABLE_COLUMNS = (
    "cycles",
    "instructions",
    "l1_misses",
    "l2_misses",
    "l1_accesses",
    "loads",
    "stores",
    "arithmetic_ops",
)


@dataclass(frozen=True)
class MeasurementTable:
    """Column-oriented view of a list of measurements."""

    n: int
    plans: tuple[Plan, ...]
    columns: dict[str, np.ndarray]
    machine: str = "default"

    def __post_init__(self) -> None:
        for name, column in self.columns.items():
            if column.shape[0] != len(self.plans):
                raise ValueError(
                    f"column {name!r} has {column.shape[0]} rows for "
                    f"{len(self.plans)} plans"
                )

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_measurements(cls, measurements: Sequence[Measurement]) -> "MeasurementTable":
        """Build a table from a nonempty measurement list (all of one size)."""
        if not measurements:
            raise ValueError("cannot build a table from zero measurements")
        sizes = {m.n for m in measurements}
        if len(sizes) != 1:
            raise ValueError(f"measurements mix transform sizes: {sorted(sizes)}")
        columns = {
            "cycles": np.array([m.cycles for m in measurements], dtype=float),
            "instructions": np.array([m.instructions for m in measurements], dtype=float),
            "l1_misses": np.array([m.l1_misses for m in measurements], dtype=float),
            "l2_misses": np.array([m.l2_misses for m in measurements], dtype=float),
            "l1_accesses": np.array([m.l1_accesses for m in measurements], dtype=float),
            "loads": np.array([m.loads for m in measurements], dtype=float),
            "stores": np.array([m.stores for m in measurements], dtype=float),
            "arithmetic_ops": np.array([m.arithmetic_ops for m in measurements], dtype=float),
        }
        return cls(
            n=measurements[0].n,
            plans=tuple(m.plan for m in measurements),
            columns=columns,
            machine=measurements[0].machine,
        )

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.plans)

    def column(self, name: str) -> np.ndarray:
        """One column by name (see ``TABLE_COLUMNS``)."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown column {name!r}; available: {sorted(self.columns)}"
            ) from exc

    @property
    def cycles(self) -> np.ndarray:
        """Simulated cycle counts."""
        return self.columns["cycles"]

    @property
    def instructions(self) -> np.ndarray:
        """Retired instruction counts."""
        return self.columns["instructions"]

    @property
    def l1_misses(self) -> np.ndarray:
        """L1 data-cache miss counts."""
        return self.columns["l1_misses"]

    @property
    def l2_misses(self) -> np.ndarray:
        """L2 data-cache miss counts."""
        return self.columns["l2_misses"]

    def filtered(self, mask: np.ndarray) -> "MeasurementTable":
        """A new table containing only the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self.plans):
            raise ValueError(
                f"mask of length {mask.shape[0]} does not match table of length "
                f"{len(self.plans)}"
            )
        return MeasurementTable(
            n=self.n,
            plans=tuple(p for p, keep in zip(self.plans, mask) if keep),
            columns={name: col[mask] for name, col in self.columns.items()},
            machine=self.machine,
        )

    def combined_model_values(self, alpha: float, beta: float) -> np.ndarray:
        """The paper's combined metric for every row."""
        return alpha * self.instructions + beta * self.l1_misses

    def best_row(self) -> int:
        """Index of the row with the fewest cycles."""
        return int(np.argmin(self.cycles))

    def as_dict(self) -> dict:
        """Plain-Python view (plans rendered as strings) for serialisation."""
        return {
            "n": self.n,
            "machine": self.machine,
            "plans": [str(p) for p in self.plans],
            "columns": {name: col.tolist() for name, col in self.columns.items()},
        }


# In-process cache of completed campaigns, keyed by
# (machine name, noise sigma, n, count, seed, max_leaf, max_children).
_CAMPAIGN_CACHE: dict[tuple, MeasurementTable] = {}


def clear_campaign_cache() -> None:
    """Drop all cached campaign tables (used by tests and the benchmarks)."""
    _CAMPAIGN_CACHE.clear()


@dataclass
class SampleCampaign:
    """Runs RSU random samples through a simulated machine."""

    machine: SimulatedMachine
    seed: int = 20070122
    max_leaf: int = MAX_UNROLLED
    max_children: int | None = None
    use_cache: bool = True

    def sampler(self) -> RSUSampler:
        """The RSU sampler used for plan generation."""
        return RSUSampler(max_leaf=self.max_leaf, max_children=self.max_children)

    def _cache_key(self, n: int, count: int) -> tuple:
        return (
            self.machine.config.name,
            self.machine.config.cycle_model.noise_sigma,
            n,
            count,
            self.seed,
            self.max_leaf,
            self.max_children,
        )

    def run(self, n: int, count: int) -> MeasurementTable:
        """Measure ``count`` RSU samples of size ``2^n``."""
        check_positive_int(n, "n")
        check_positive_int(count, "count")
        key = self._cache_key(n, count)
        if self.use_cache and key in _CAMPAIGN_CACHE:
            return _CAMPAIGN_CACHE[key]
        plan_rng = as_generator(derive_seed(self.seed, "plans", n, count))
        sampler = self.sampler()
        measurements: list[Measurement] = []
        for index in range(count):
            plan = sampler.sample(n, plan_rng)
            noise_rng = as_generator(derive_seed(self.seed, "noise", n, index))
            measurements.append(self.machine.measure(plan, rng=noise_rng))
        table = MeasurementTable.from_measurements(measurements)
        if self.use_cache:
            _CAMPAIGN_CACHE[key] = table
        return table

    def measure_plans(self, plans: Iterable[Plan], tag: str = "explicit") -> MeasurementTable:
        """Measure an explicit list of plans (all of one size)."""
        plan_list = list(plans)
        if not plan_list:
            raise ValueError("measure_plans requires at least one plan")
        measurements = []
        for index, plan in enumerate(plan_list):
            noise_rng = as_generator(derive_seed(self.seed, tag, plan.n, index))
            measurements.append(self.machine.measure(plan, rng=noise_rng))
        return MeasurementTable.from_measurements(measurements)
