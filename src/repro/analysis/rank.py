"""Rank statistics: tied ranks, Spearman's rho and Kendall's tau-b.

The objective-sweep experiment (see :mod:`repro.suite.sweep`) asks how much
two cost functions *disagree about the ordering* of a plan population — the
paper's model-comparison story recast as rank statistics.  Pearson
correlation (already in :mod:`repro.analysis.pearson`) measures linear
agreement of the values; the two coefficients here measure agreement of the
*ranks*:

* :func:`spearman_correlation` — Pearson correlation of the tied-average
  ranks.  Sensitive to how far individual plans move in the ordering.
* :func:`kendall_tau` — the tau-b coefficient: concordant minus discordant
  pairs over the tie-corrected pair count.  Sensitive to how many pairwise
  "which plan is faster?" verdicts flip between the two objectives.

Both are exact (no sampling, no approximation); ties — common when an
analytic model assigns the same value to structurally different plans — are
handled with average ranks (Spearman) and the tau-b correction (Kendall).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.pearson import pearson_correlation

__all__ = ["rank_values", "spearman_correlation", "kendall_tau"]


def rank_values(values: "Sequence[float] | np.ndarray") -> np.ndarray:
    """Ascending 1-based ranks with ties averaged (``scipy.rankdata`` style).

    The smallest value gets rank 1 — under a cost metric, rank 1 is the best
    plan.  Equal values share the mean of the ranks they would occupy.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"rank_values expects a 1-D array, got shape {array.shape}")
    order = np.argsort(array, kind="stable")
    ranks = np.empty(array.shape[0], dtype=float)
    ranks[order] = np.arange(1, array.shape[0] + 1, dtype=float)
    # Average the ranks within each tied group.
    sorted_values = array[order]
    boundaries = np.empty(array.shape[0], dtype=bool)
    if array.shape[0]:
        boundaries[0] = True
        boundaries[1:] = sorted_values[1:] != sorted_values[:-1]
        group_ids = np.cumsum(boundaries) - 1
        sums = np.zeros(group_ids[-1] + 1 if array.shape[0] else 0, dtype=float)
        counts = np.zeros_like(sums)
        np.add.at(sums, group_ids, ranks[order])
        np.add.at(counts, group_ids, 1.0)
        averaged = sums / counts
        ranks[order] = averaged[group_ids]
    return ranks


def spearman_correlation(
    x: "Sequence[float] | np.ndarray", y: "Sequence[float] | np.ndarray"
) -> float:
    """Spearman's rho: Pearson correlation of the tied-average ranks."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    if xa.shape[0] < 2:
        raise ValueError("spearman_correlation requires at least two observations")
    return pearson_correlation(rank_values(xa), rank_values(ya))


def kendall_tau(
    x: "Sequence[float] | np.ndarray",
    y: "Sequence[float] | np.ndarray",
    chunk: int = 256,
) -> float:
    """Kendall's tau-b of two samples (exact, tie-corrected).

    ``tau_b = (C - D) / sqrt((T - Tx) * (T - Ty))`` where ``C``/``D`` count
    concordant/discordant pairs, ``T = n(n-1)/2`` is the pair count and
    ``Tx``/``Ty`` count pairs tied in ``x``/``y`` alone.  Computed with
    vectorised pairwise sign comparisons in row chunks of ``chunk`` — exact
    for any input, O(n^2) work but bounded memory, which is plenty for plan
    populations (thousands, not millions).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = xa.shape[0]
    if n < 2:
        raise ValueError("kendall_tau requires at least two observations")
    concordant = 0
    discordant = 0
    ties_x = 0
    ties_y = 0
    for start in range(0, n, max(1, int(chunk))):
        stop = min(n, start + max(1, int(chunk)))
        # Strict upper triangle only: pair (i, j) with i < j counted once.
        dx = np.sign(xa[start:stop, None] - xa[None, :])
        dy = np.sign(ya[start:stop, None] - ya[None, :])
        mask = np.arange(n)[None, :] > np.arange(start, stop)[:, None]
        product = dx * dy
        concordant += int(((product > 0) & mask).sum())
        discordant += int(((product < 0) & mask).sum())
        ties_x += int(((dx == 0) & mask).sum())
        ties_y += int(((dy == 0) & mask).sum())
    total = n * (n - 1) // 2
    denom_x = total - ties_x
    denom_y = total - ties_y
    if denom_x <= 0 or denom_y <= 0:
        # One sample is entirely tied: the ordering carries no information.
        return 0.0
    return (concordant - discordant) / float(np.sqrt(float(denom_x) * float(denom_y)))
