"""Pearson correlation.

The paper's quantitative results are Pearson correlation coefficients between
model values and measured cycle counts.  The coefficient is implemented
directly (and cross-checked against ``scipy.stats.pearsonr`` in the tests) so
the package carries no runtime dependency on SciPy's statistical distributions
for its core numbers.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["pearson_correlation", "correlation_matrix", "fisher_confidence_interval"]


def pearson_correlation(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """The Pearson correlation coefficient of two equal-length samples.

    Raises ``ValueError`` for samples of fewer than two points or mismatched
    lengths; returns ``nan`` when either sample is constant (the coefficient
    is undefined in that case).
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("pearson_correlation expects 1-D samples")
    if xa.shape[0] != ya.shape[0]:
        raise ValueError(
            f"samples must have equal length, got {xa.shape[0]} and {ya.shape[0]}"
        )
    if xa.shape[0] < 2:
        raise ValueError("need at least two observations")
    xc = xa - xa.mean()
    yc = ya - ya.mean()
    denom = np.sqrt((xc * xc).sum() * (yc * yc).sum())
    if denom == 0.0:
        return float("nan")
    return float((xc * yc).sum() / denom)


def correlation_matrix(columns: Mapping[str, Sequence[float] | np.ndarray]) -> dict[tuple[str, str], float]:
    """Pairwise Pearson correlations of named columns.

    Returns a dictionary keyed by ordered name pairs ``(a, b)`` with ``a < b``.
    """
    names = sorted(columns)
    out: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            out[(a, b)] = pearson_correlation(columns[a], columns[b])
    return out


def fisher_confidence_interval(
    rho: float,
    sample_size: int,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Approximate confidence interval for a correlation via Fisher's z.

    Used in EXPERIMENTS.md to indicate how tightly the reproduced coefficients
    are estimated at the chosen sample sizes.
    """
    if not -1.0 <= rho <= 1.0:
        raise ValueError(f"rho must lie in [-1, 1], got {rho}")
    if sample_size < 4:
        raise ValueError("need at least four observations for the interval")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly between 0 and 1")
    from scipy.stats import norm

    z = np.arctanh(min(max(rho, -0.999999), 0.999999))
    se = 1.0 / np.sqrt(sample_size - 3)
    quantile = norm.ppf(0.5 + confidence / 2.0)
    lo, hi = z - quantile * se, z + quantile * se
    return float(np.tanh(lo)), float(np.tanh(hi))
