"""Percentile pruning curves (Figures 10 and 11) and safe pruning thresholds.

The paper's pruning figures plot, for performance percentiles ``p`` in
{1, 5, 10}, the cumulative fraction of *all* sampled algorithms that (a) have
model value at most a threshold ``t`` and (b) have performance outside the top
``p`` percent.  As ``t`` sweeps to the maximum model value the curve
approaches ``1 - p/100``.  The figures are read as pruning evidence: because
model value and cycle count are positively correlated, algorithms in the top
``p`` percent concentrate at small model values, so a threshold well below the
maximum already captures all of them and everything above it can be discarded.

Two derived quantities make that argument precise and are reported alongside
the curves:

* :func:`safe_pruning_threshold` — the smallest threshold that keeps every
  top-``p``-percent algorithm of the sample (the largest model value observed
  among them), together with the fraction of the sample that threshold
  discards;
* :attr:`PruningCurve.miss_probability` — for any threshold, the fraction of
  top-``p`` algorithms that would be lost by pruning above it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.validation import check_positive_int

__all__ = ["PruningCurve", "pruning_curves", "safe_pruning_threshold", "PAPER_PERCENTILES"]

#: The percentiles plotted in Figures 10 and 11.
PAPER_PERCENTILES = (1.0, 5.0, 10.0)


@dataclass(frozen=True)
class PruningCurve:
    """One pruning curve: cumulative outside-top-``p`` fraction vs model value."""

    #: Performance percentile (e.g. 5.0 means "the top 5 percent").
    percentile: float
    #: Model-value thresholds (ascending; the sample's sorted model values).
    thresholds: np.ndarray
    #: Fraction of all samples with model value <= threshold AND performance
    #: outside the top ``percentile`` percent.
    cumulative: np.ndarray
    #: Fraction of top-``percentile`` samples with model value <= threshold.
    captured_top: np.ndarray

    def __post_init__(self) -> None:
        if not (
            self.thresholds.shape == self.cumulative.shape == self.captured_top.shape
        ):
            raise ValueError("thresholds, cumulative and captured_top must align")

    @property
    def limit(self) -> float:
        """The asymptote ``1 - p/100`` the cumulative curve approaches."""
        return 1.0 - self.percentile / 100.0

    def value_at(self, threshold: float) -> float:
        """Cumulative fraction at an arbitrary threshold."""
        idx = np.searchsorted(self.thresholds, threshold, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self.cumulative[idx])

    def miss_probability(self, threshold: float) -> float:
        """Fraction of top-``p`` algorithms lost when discarding model > threshold."""
        idx = np.searchsorted(self.thresholds, threshold, side="right") - 1
        if idx < 0:
            return 1.0
        return float(1.0 - self.captured_top[idx])


def pruning_curves(
    model_values: Sequence[float] | np.ndarray,
    cycles: Sequence[float] | np.ndarray,
    percentiles: Sequence[float] = PAPER_PERCENTILES,
) -> list[PruningCurve]:
    """Compute the Figures 10/11 curves for each performance percentile.

    ``model_values`` may be instruction counts (Figure 10) or combined model
    values (Figure 11); ``cycles`` are the corresponding measured cycle counts
    (lower is better).
    """
    model = np.asarray(model_values, dtype=float)
    cyc = np.asarray(cycles, dtype=float)
    if model.shape != cyc.shape or model.ndim != 1:
        raise ValueError("model_values and cycles must be 1-D arrays of equal length")
    if model.shape[0] < 2:
        raise ValueError("need at least two samples")
    order = np.argsort(model, kind="stable")
    sorted_model = model[order]
    sorted_cycles = cyc[order]
    total = model.shape[0]

    curves: list[PruningCurve] = []
    for percentile in percentiles:
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must lie in (0, 100), got {percentile}")
        cutoff = np.percentile(cyc, percentile)
        outside = sorted_cycles > cutoff
        inside = ~outside
        inside_total = max(int(inside.sum()), 1)
        cumulative = np.cumsum(outside) / float(total)
        captured_top = np.cumsum(inside) / float(inside_total)
        curves.append(
            PruningCurve(
                percentile=float(percentile),
                thresholds=sorted_model,
                cumulative=cumulative,
                captured_top=captured_top,
            )
        )
    return curves


def safe_pruning_threshold(
    model_values: Sequence[float] | np.ndarray,
    cycles: Sequence[float] | np.ndarray,
    percentile: float = 5.0,
) -> tuple[float, float]:
    """Smallest threshold keeping every top-``percentile`` algorithm.

    Returns ``(threshold, discarded_fraction)``: pruning all algorithms whose
    model value exceeds ``threshold`` discards ``discarded_fraction`` of the
    sample while provably (within the sample) retaining every algorithm whose
    cycle count is within the top ``percentile`` percent.
    """
    model = np.asarray(model_values, dtype=float)
    cyc = np.asarray(cycles, dtype=float)
    if model.shape != cyc.shape or model.ndim != 1:
        raise ValueError("model_values and cycles must be 1-D arrays of equal length")
    check_positive_int(model.shape[0], "sample size")
    if not 0.0 < percentile < 100.0:
        raise ValueError(f"percentile must lie in (0, 100), got {percentile}")
    cutoff = np.percentile(cyc, percentile)
    top_mask = cyc <= cutoff
    if not top_mask.any():
        # Degenerate tiny samples: fall back to the single best observation.
        top_mask = cyc == cyc.min()
    threshold = float(model[top_mask].max())
    discarded = float((model > threshold).mean())
    return threshold, discarded
