"""Distribution summaries: moments, skewness, and normality diagnostics.

The paper reads its histograms qualitatively — the cycle histogram of the
large size shows "a slight left skew ... where there is none in the
instruction histogram", attributed to the skew of the cache-miss histogram —
and cites [5] for the theoretical result that the instruction-count
distribution approaches a normal limit.  This module provides the numbers
behind those qualitative statements: sample moments, standardised skewness and
excess kurtosis, and a Jarque–Bera-style normality statistic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["DistributionSummary", "summarize_distribution", "skewness", "excess_kurtosis"]


def skewness(values: Sequence[float] | np.ndarray) -> float:
    """Standardised third central moment (Fisher definition)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 3:
        raise ValueError("skewness needs a 1-D sample with at least three points")
    centred = arr - arr.mean()
    std = centred.std()
    if std == 0.0:
        return 0.0
    return float((centred**3).mean() / std**3)


def excess_kurtosis(values: Sequence[float] | np.ndarray) -> float:
    """Standardised fourth central moment minus 3 (zero for a normal)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 4:
        raise ValueError("excess_kurtosis needs a 1-D sample with at least four points")
    centred = arr - arr.mean()
    std = centred.std()
    if std == 0.0:
        return 0.0
    return float((centred**4).mean() / std**4 - 3.0)


@dataclass(frozen=True)
class DistributionSummary:
    """Summary statistics of one sampled quantity."""

    count: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    skewness: float
    excess_kurtosis: float

    @property
    def iqr(self) -> float:
        """Interquartile range."""
        return self.q3 - self.q1

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation relative to the mean."""
        return self.std / self.mean if self.mean else float("inf")

    @property
    def jarque_bera(self) -> float:
        """Jarque–Bera statistic (large values indicate non-normality)."""
        n = self.count
        return n / 6.0 * (self.skewness**2 + self.excess_kurtosis**2 / 4.0)

    def looks_normal(self, jb_threshold: float = 9.21) -> bool:
        """Rough normality check (threshold defaults to the chi^2_2 99% point)."""
        return self.jarque_bera < jb_threshold

    def as_dict(self) -> dict[str, float]:
        """Flat dictionary view."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "skewness": self.skewness,
            "excess_kurtosis": self.excess_kurtosis,
            "jarque_bera": self.jarque_bera,
        }


def summarize_distribution(values: Sequence[float] | np.ndarray) -> DistributionSummary:
    """Compute the summary statistics of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.shape[0] < 4:
        raise ValueError("summarize_distribution needs a 1-D sample with >= 4 points")
    q1, median, q3 = np.percentile(arr, [25.0, 50.0, 75.0])
    return DistributionSummary(
        count=int(arr.shape[0]),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(arr.max()),
        skewness=skewness(arr),
        excess_kurtosis=excess_kurtosis(arr),
    )
