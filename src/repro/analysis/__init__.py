"""Statistical analysis used by the paper's evaluation.

Everything here is plain statistics over NumPy arrays (no dependency on the
WHT or machine subpackages), so the same routines serve measured data,
modelled data and synthetic test fixtures:

* :mod:`repro.analysis.pearson` — Pearson correlation (own implementation,
  cross-checked against SciPy in the tests).
* :mod:`repro.analysis.outliers` — the IQR "outer fence" filter the paper
  applies to its samples.
* :mod:`repro.analysis.histogram` — fixed-bin histograms (50 bins in the
  paper's Figures 4 and 5).
* :mod:`repro.analysis.distribution` — moments, skewness and normality
  diagnostics for the sampled distributions.
* :mod:`repro.analysis.cdf` — the percentile pruning curves of Figures 10/11
  and the derived safe-pruning thresholds.
* :mod:`repro.analysis.scatter` — scatter-plot data assembly with marked
  reference algorithms (Figures 6–8).
"""

from repro.analysis.pearson import pearson_correlation, correlation_matrix
from repro.analysis.outliers import OutlierFilterResult, iqr_bounds, remove_outer_fence_outliers
from repro.analysis.histogram import Histogram, histogram
from repro.analysis.distribution import DistributionSummary, summarize_distribution
from repro.analysis.cdf import PruningCurve, pruning_curves, safe_pruning_threshold
from repro.analysis.scatter import ScatterData, scatter_data

__all__ = [
    "pearson_correlation",
    "correlation_matrix",
    "OutlierFilterResult",
    "iqr_bounds",
    "remove_outer_fence_outliers",
    "Histogram",
    "histogram",
    "DistributionSummary",
    "summarize_distribution",
    "PruningCurve",
    "pruning_curves",
    "safe_pruning_threshold",
    "ScatterData",
    "scatter_data",
]
