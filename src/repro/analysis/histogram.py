"""Fixed-bin histograms (Figures 4 and 5 use 50 equal-width bins)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.util.tables import format_histogram
from repro.util.validation import check_positive_int

__all__ = ["Histogram", "histogram", "PAPER_BIN_COUNT"]

#: Number of equally sized bins used by the paper's histograms.
PAPER_BIN_COUNT = 50


@dataclass(frozen=True)
class Histogram:
    """A binned sample: ``counts[i]`` observations in ``[edges[i], edges[i+1])``."""

    edges: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        if self.edges.ndim != 1 or self.counts.ndim != 1:
            raise ValueError("edges and counts must be 1-D arrays")
        if self.edges.shape[0] != self.counts.shape[0] + 1:
            raise ValueError("edges must have exactly one more entry than counts")

    @property
    def bins(self) -> int:
        """Number of bins."""
        return int(self.counts.shape[0])

    @property
    def total(self) -> int:
        """Number of binned observations."""
        return int(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        """Bin mid-points."""
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    @property
    def mode_center(self) -> float:
        """Mid-point of the fullest bin."""
        return float(self.centers[int(np.argmax(self.counts))])

    def normalized(self) -> np.ndarray:
        """Counts as fractions of the total (empty histogram gives zeros)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=float)
        return self.counts / float(total)

    def render(self, width: int = 40, title: str | None = None) -> str:
        """ASCII rendering (horizontal bars)."""
        return format_histogram(self.edges.tolist(), self.counts.tolist(), width=width, title=title)


def histogram(
    values: Sequence[float] | np.ndarray,
    bins: int = PAPER_BIN_COUNT,
    value_range: tuple[float, float] | None = None,
) -> Histogram:
    """Bin ``values`` into ``bins`` equal-width bins (the paper's convention)."""
    check_positive_int(bins, "bins")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.shape[0] == 0:
        raise ValueError("histogram expects a nonempty 1-D sample")
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    return Histogram(edges=edges, counts=counts)
