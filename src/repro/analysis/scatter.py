"""Scatter-plot data assembly (Figures 6, 7 and 8).

The paper's scatter plots show the random sample as points, with the canonical
algorithms and the DP-best algorithm marked separately, and report the Pearson
correlation coefficient in the caption.  :class:`ScatterData` holds exactly
that: the two coordinate arrays, the correlation, and a dictionary of named
reference points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.pearson import pearson_correlation

__all__ = ["ScatterData", "scatter_data"]


@dataclass(frozen=True)
class ScatterData:
    """One scatter plot's worth of data."""

    #: Axis label of the x quantity (e.g. ``"instructions"``).
    x_label: str
    #: Axis label of the y quantity (e.g. ``"cycles"``).
    y_label: str
    #: Sample x coordinates.
    x: np.ndarray
    #: Sample y coordinates.
    y: np.ndarray
    #: Pearson correlation of the sample.
    correlation: float
    #: Named reference points, e.g. ``{"iterative": (instr, cycles), ...}``.
    references: dict[str, tuple[float, float]] = field(default_factory=dict)

    @property
    def count(self) -> int:
        """Number of sample points."""
        return int(self.x.shape[0])

    def reference_outside_range(self, name: str) -> bool:
        """Whether a reference point falls outside the sample's bounding box.

        The paper notes the left recursive algorithm is "outside range" in
        Figures 7 and 8; this reproduces that annotation.
        """
        if name not in self.references:
            raise KeyError(f"unknown reference point {name!r}")
        rx, ry = self.references[name]
        return bool(
            rx < self.x.min()
            or rx > self.x.max()
            or ry < self.y.min()
            or ry > self.y.max()
        )

    def as_dict(self) -> dict:
        """Flat dictionary view (arrays converted to lists)."""
        return {
            "x_label": self.x_label,
            "y_label": self.y_label,
            "correlation": self.correlation,
            "count": self.count,
            "references": dict(self.references),
        }


def scatter_data(
    x: Sequence[float] | np.ndarray,
    y: Sequence[float] | np.ndarray,
    x_label: str,
    y_label: str,
    references: Mapping[str, tuple[float, float]] | None = None,
) -> ScatterData:
    """Bundle two aligned samples into a :class:`ScatterData`."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    return ScatterData(
        x_label=x_label,
        y_label=y_label,
        x=xa,
        y=ya,
        correlation=pearson_correlation(xa, ya),
        references=dict(references or {}),
    )
