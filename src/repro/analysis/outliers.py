"""IQR outer-fence outlier filtering.

The paper filters its 10,000-plan samples "for extreme outliers beyond the
'outer fences'", i.e. it keeps observations ``X`` with

    Q1 - 3.0 * IQR  <  X  <  Q3 + 3.0 * IQR

where ``Q1``/``Q3`` are the first and third quartiles and ``IQR = Q3 - Q1``.
(The paper prints the lower fence as ``3.0 x IQR - Q1``; the conventional
outer fence ``Q1 - 3.0 x IQR`` is used here, which is what the filtering is
universally understood to mean.)  The filter is applied to the cycle counts
and propagated to the paired series so that all columns stay aligned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["iqr_bounds", "OutlierFilterResult", "remove_outer_fence_outliers"]

#: The paper's outer-fence multiplier.
OUTER_FENCE_FACTOR = 3.0


def iqr_bounds(values: Sequence[float] | np.ndarray, factor: float = OUTER_FENCE_FACTOR) -> tuple[float, float]:
    """The (lower, upper) outer fences of a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.shape[0] == 0:
        raise ValueError("iqr_bounds expects a nonempty 1-D sample")
    if factor < 0:
        raise ValueError(f"factor must be nonnegative, got {factor}")
    q1, q3 = np.percentile(arr, [25.0, 75.0])
    iqr = q3 - q1
    return float(q1 - factor * iqr), float(q3 + factor * iqr)


@dataclass(frozen=True)
class OutlierFilterResult:
    """Outcome of outer-fence filtering on a reference column."""

    #: Boolean mask of kept observations (aligned with the original sample).
    mask: np.ndarray
    #: Lower fence used.
    lower: float
    #: Upper fence used.
    upper: float

    @property
    def kept(self) -> int:
        """Number of observations kept."""
        return int(self.mask.sum())

    @property
    def removed(self) -> int:
        """Number of observations removed."""
        return int(self.mask.shape[0] - self.mask.sum())

    def apply(self, values: Sequence[float] | np.ndarray) -> np.ndarray:
        """Filter a paired column with the same mask."""
        arr = np.asarray(values)
        if arr.shape[0] != self.mask.shape[0]:
            raise ValueError(
                f"column of length {arr.shape[0]} does not match mask of length "
                f"{self.mask.shape[0]}"
            )
        return arr[self.mask]


def remove_outer_fence_outliers(
    values: Sequence[float] | np.ndarray,
    factor: float = OUTER_FENCE_FACTOR,
) -> OutlierFilterResult:
    """Mask observations lying beyond the outer fences of ``values``."""
    arr = np.asarray(values, dtype=float)
    lower, upper = iqr_bounds(arr, factor=factor)
    mask = (arr > lower) & (arr < upper)
    return OutlierFilterResult(mask=mask, lower=lower, upper=upper)
