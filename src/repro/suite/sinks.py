"""Pluggable result sinks for the suite runner.

A sink receives every completed :class:`~repro.suite.results.ExperimentResult`
via :meth:`write` and persists whichever view it cares about.  File sinks
write **one file per unit and table** (atomic ``.tmp`` + rename, so a
SIGKILL mid-run never leaves a torn file), name files by the sanitised unit
id, and never emit timestamps or other run-local state — two runs that
measured identical values produce byte-identical sink trees, which is what
the plain-vs-service bit-identity gates compare.

The manifest records, per unit, which sink *names* have been written; a
re-run with the same (or a subset of the) sinks skips the unit entirely.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Protocol, runtime_checkable

from repro.suite.results import ExperimentResult, sanitize_unit_id

__all__ = [
    "ResultSink",
    "CSVSink",
    "JSONLSink",
    "FigureArtifactSink",
    "MemorySink",
    "resolve_sinks",
]


@runtime_checkable
class ResultSink(Protocol):
    """What the runner requires of a sink."""

    #: Stable identifier recorded in the manifest per written unit.
    name: str

    def write(self, result: ExperimentResult) -> None:
        """Persist one completed unit's results."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Flush and release resources (called once, end of run)."""
        ...  # pragma: no cover - protocol


def _atomic_write(path: str, data: str) -> None:
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8", newline="") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class _DirectorySink:
    """Shared base: one output directory, one file per unit and table."""

    name = "directory"
    extension = "dat"

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, result: ExperimentResult, table_name: str) -> str:
        stem = sanitize_unit_id(result.unit_id)
        return os.path.join(self.directory, f"{stem}.{table_name}.{self.extension}")

    def close(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.directory!r})"


class CSVSink(_DirectorySink):
    """One ``<unit>.<table>.csv`` file per table, header row first."""

    name = "csv"
    extension = "csv"

    def write(self, result: ExperimentResult) -> None:
        for table_name, table in result.tables.items():
            buffer = io.StringIO()
            writer = csv.writer(buffer, lineterminator="\n")
            writer.writerow(table.headers)
            for row in table.rows:
                writer.writerow(row)
            _atomic_write(self._path(result, table_name), buffer.getvalue())


class JSONLSink(_DirectorySink):
    """One ``<unit>.<table>.jsonl`` file per table, one JSON object per row."""

    name = "jsonl"
    extension = "jsonl"

    def write(self, result: ExperimentResult) -> None:
        for table_name, table in result.tables.items():
            lines = [
                json.dumps(row, sort_keys=True, separators=(",", ":"))
                for row in table.as_dicts()
            ]
            _atomic_write(
                self._path(result, table_name), "\n".join(lines) + ("\n" if lines else "")
            )


class FigureArtifactSink(_DirectorySink):
    """One ``<unit>.json`` artifact per unit: the figure's JSON payload."""

    name = "figure"
    extension = "json"

    def write(self, result: ExperimentResult) -> None:
        payload = {
            "unit": result.unit_id,
            "experiment": result.experiment_id,
            "kind": result.kind,
            "machine": result.machine_id,
            "seed": result.seed,
            "artifact": result.artifact,
        }
        stem = sanitize_unit_id(result.unit_id)
        path = os.path.join(self.directory, f"{stem}.{self.extension}")
        _atomic_write(path, json.dumps(payload, sort_keys=True, indent=2) + "\n")


class MemorySink:
    """Keeps every result in a list — the test/driver sink."""

    name = "memory"

    def __init__(self):
        self.results: list[ExperimentResult] = []

    def write(self, result: ExperimentResult) -> None:
        self.results.append(result)

    def close(self) -> None:
        pass

    def get(self, experiment_id: str) -> ExperimentResult:
        for result in self.results:
            if result.experiment_id == experiment_id:
                return result
        raise KeyError(experiment_id)

    def __len__(self) -> int:
        return len(self.results)

    def __repr__(self) -> str:
        return f"MemorySink({len(self.results)} results)"


#: Sink factories accepted by name in :func:`resolve_sinks`.
SINK_PRESETS = {
    "csv": CSVSink,
    "jsonl": JSONLSink,
    "figure": FigureArtifactSink,
}


def resolve_sinks(
    sinks: "list | tuple | None", artifacts: str | None
) -> list:
    """Normalise the ``sinks=`` argument of :func:`repro.suite.api.suite`.

    ``sinks`` may mix ready sink objects and preset names (``"csv"``,
    ``"jsonl"``, ``"figure"`` — these need ``artifacts=``, the output
    directory).  With ``sinks=None`` and an ``artifacts`` directory, the
    default trio (CSV + JSONL + figure artifacts) is used; with neither,
    the run is sink-less (results stay in the returned
    :class:`~repro.suite.results.SuiteResult`).
    """
    if sinks is None:
        if artifacts is None:
            return []
        return [CSVSink(artifacts), JSONLSink(artifacts), FigureArtifactSink(artifacts)]
    resolved = []
    for entry in sinks:
        if isinstance(entry, str):
            if entry not in SINK_PRESETS:
                raise ValueError(
                    f"unknown sink preset {entry!r}; available: {sorted(SINK_PRESETS)}"
                )
            if artifacts is None:
                raise ValueError(
                    f"sink preset {entry!r} needs artifacts= (the output directory)"
                )
            resolved.append(SINK_PRESETS[entry](artifacts))
        else:
            if not hasattr(entry, "write") or not hasattr(entry, "name"):
                raise TypeError(
                    f"{entry!r} is not a ResultSink (needs .name and .write(result))"
                )
            resolved.append(entry)
    names = [sink.name for sink in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate sink names {names}; manifest bookkeeping is per name")
    return resolved
