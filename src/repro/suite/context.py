"""Per-(machine, seed) execution context for the suite runner.

A :class:`SuiteContext` owns one :class:`~repro.runtime.session.Session` and
the *baseline* data every dependent experiment shares:

* ``"small"`` — the in-cache RSU campaign table,
* ``"large"`` — the out-of-cache RSU campaign table,
* ``"canonical"`` — per-size canonical + DP-best measurement tables (the
  Figure 1–3 sweep and the scatter figures' reference points).

Baselines materialise **once** per context and are shared by every
experiment that declares them — the runner's baseline-first DAG.  All of
them are store-native: campaigns through
:func:`~repro.runtime.campaigns.run_campaign`, canonical tables through
:meth:`Session.measure_plans` (keyed by a digest of the plan list) and the
DP-best plans through the session's cost engine (append-log cost records).
Re-running against the same store therefore re-derives everything from
cached records with zero new measurements.

Unlike the legacy :meth:`Session.canonical_sweep` — which measures through
the machine's *shared* noise generator and is therefore order-dependent —
the suite's canonical baseline derives every noise draw from
``(seed, tag, n, index)`` and searches through the engine, so the results
are identical across backends, across a connected/remote service, and
across cold/warm store states.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.config import ExperimentScale
from repro.machine.machine import SimulatedMachine
from repro.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    SerialBackend,
)
from repro.runtime.session import Session
from repro.runtime.store import CampaignStore
from repro.runtime.table import MeasurementTable
from repro.search.dp import dp_search
from repro.wht.canonical import canonical_plans
from repro.wht.plan import Plan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.search.dp import DPSearchResult

__all__ = ["CountingBackend", "SuiteContext", "BASELINE_ORDER", "REFERENCE_NAMES"]

#: Materialisation order of the shared baselines (cheap campaigns first, the
#: DP-bearing canonical sweep last).
BASELINE_ORDER = ("small", "large", "canonical")

#: Reference algorithms measured per size, in the paper's legend order.
REFERENCE_NAMES = ("iterative", "left", "right", "best")


class CountingBackend:
    """A transparent backend wrapper counting the units it measures.

    The suite runner wraps the session backend with this to account for
    *every* measurement a unit causes — campaigns, canonical tables and
    (for plain sessions, whose cost engine evaluates through the session
    backend) engine acquisitions — which is what the manifest records and
    what the resume/perf gates assert to be zero on a warm store.
    """

    def __init__(self, inner: ExecutionBackend):
        self.inner = inner
        self.measured = 0

    @property
    def name(self) -> str:
        return f"counting({getattr(self.inner, 'name', type(self.inner).__name__)})"

    def measure_units(self, machine, units):
        units = list(units)
        self.measured += len(units)
        return self.inner.measure_units(machine, units)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()

    def __repr__(self) -> str:
        return f"CountingBackend({self.inner!r}, measured={self.measured})"


class SuiteContext:
    """One machine + one seed + one session, plus the shared baselines."""

    def __init__(
        self,
        machine_id: str,
        machine: SimulatedMachine,
        scale: ExperimentScale,
        *,
        backend: ExecutionBackend | None = None,
        store: CampaignStore | None = None,
        service=None,
        connect: "str | Sequence[str] | None" = None,
        service_fallback: bool = False,
        transport_options: dict | None = None,
        dp_max_children: int | None = 2,
    ):
        self.machine_id = machine_id
        self.machine = machine
        self.scale = scale
        self._counting: CountingBackend | None = None
        if connect is not None:
            # Remote session: campaigns measure locally (counted), the cost
            # engine crosses the wire (the client's own .measured counter).
            # A list/tuple of URLs makes the engine a FleetClient striping
            # over the member ring (Session handles the dispatch).
            self.mode = "remote"
            self._counting = CountingBackend(self._resolve_local(backend))
            self.session = Session(
                machine=machine,
                scale=scale,
                backend=self._counting,
                store=store,
                dp_max_children=dp_max_children,
                service_fallback=service_fallback,
                remote_url=connect,
                remote_options=transport_options or {},
            )
        elif service is not None:
            # Connected session: all measurement work routes through the
            # shared service; the engine client's .measured counter is the
            # closest per-tenant accounting the service exposes.
            self.mode = "service"
            self.session = Session.connect(
                service,
                machine=machine,
                scale=scale,
                dp_max_children=dp_max_children,
                fallback=service_fallback,
            )
        else:
            self.mode = "plain"
            # Resolve the serial default to the fused batched backend *before*
            # wrapping: Session.cost_engine only upgrades an exact-type
            # SerialBackend, and the wrapper must see the engine's traffic.
            self._counting = CountingBackend(self._resolve_local(backend))
            self.session = Session(
                machine=machine,
                scale=scale,
                backend=self._counting,
                store=store,
                dp_max_children=dp_max_children,
            )
        self._canonical_tables: dict[int, MeasurementTable] = {}
        self._dp_result: "DPSearchResult | None" = None
        self._dp_max_n = 0
        self._model_tables: dict[str, MeasurementTable] = {}

    @staticmethod
    def _resolve_local(backend: ExecutionBackend | None) -> ExecutionBackend:
        if backend is None or type(backend) is SerialBackend:
            return BatchedBackend()
        return backend

    # -- measurement accounting --------------------------------------------------

    def measured_total(self) -> int:
        """Measurements this context has caused so far (all channels).

        Plain sessions: everything — campaigns, canonical tables and engine
        acquisitions — flows through the counted session backend.  Remote
        sessions add the remote client's own counter (engine acquisitions
        happen server-side); connected sessions only see the client counter
        (campaign work is the shared service's, deduped fleet-wide).
        """
        total = self._counting.measured if self._counting is not None else 0
        if self.mode in ("service", "remote"):
            engine = self.session._cost_engine
            if engine is not None:
                total += int(getattr(engine, "measured", 0))
        return total

    # -- baselines ---------------------------------------------------------------

    def materialize(self, baseline: str) -> None:
        """Run one named baseline (idempotent; memoised by the session)."""
        if baseline == "small":
            self.session.small_table()
        elif baseline == "large":
            self.session.large_table()
        elif baseline == "canonical":
            self.sweep_sizes()
            for n in self.sweep_sizes():
                self.canonical_table(n)
        else:
            raise ValueError(f"unknown baseline {baseline!r}; known: {BASELINE_ORDER}")

    def small_table(self) -> MeasurementTable:
        return self.session.small_table()

    def large_table(self) -> MeasurementTable:
        return self.session.large_table()

    def campaign_table(self, which: str) -> MeasurementTable:
        if which not in ("small", "large"):
            raise ValueError(f"which must be 'small' or 'large', got {which!r}")
        return self.small_table() if which == "small" else self.large_table()

    def model_table(self, which: str) -> MeasurementTable:
        """A campaign table with the analytic model columns grafted on."""
        table = self._model_tables.get(which)
        if table is None:
            from repro.experiments.model_scores import with_model_columns
            from repro.models.combined import CombinedModel
            from repro.models.instruction_count import InstructionCountModel

            table = with_model_columns(
                self.campaign_table(which),
                instruction_model=InstructionCountModel(self.machine.config.instruction_model),
                miss_model=self.machine.config,
                combined=CombinedModel(),
            )
            self._model_tables[which] = table
        return table

    def figure_table(self, which: str, metrics: Sequence[str]) -> MeasurementTable:
        """The campaign table able to serve ``metrics`` (model-scored iff needed)."""
        if any(str(metric).startswith("model_") for metric in metrics):
            return self.model_table(which)
        return self.campaign_table(which)

    # -- canonical sweep ---------------------------------------------------------

    def sweep_sizes(self) -> tuple[int, ...]:
        """The Figure 1–3 sweep sizes (1 up to the scale's canonical max)."""
        return tuple(range(1, self.scale.canonical_max_size + 1))

    def dp_result(self, max_n: int) -> "DPSearchResult":
        """Engine-backed DP search up to ``max_n`` (grows monotonically).

        Evaluates measured cycles through :meth:`Session.cost_engine`, so
        every candidate's metrics land in the store's append-log record
        cache: a warm re-run (or any other objective over the same plans)
        replays the search without a single new measurement.
        """
        if self._dp_result is None or max_n > self._dp_max_n:
            engine = self.session.cost_engine()
            self._dp_result = dp_search(
                max_n,
                engine.cost("cycles"),
                max_children=self.session.dp_max_children,
                record_candidates=False,
            )
            self._dp_max_n = max_n
        return self._dp_result

    def best_plan(self, n: int) -> Plan:
        """The DP-best plan of size ``2^n`` under engine-measured cycles."""
        return self.dp_result(max(n, self.scale.canonical_max_size)).best(n)

    def canonical_table(self, n: int) -> MeasurementTable:
        """Iterative/left/right/DP-best measurements at one size (cached).

        Measured through :meth:`Session.measure_plans` with the fixed
        ``"suite-canonical"`` tag and :data:`REFERENCE_NAMES` order, so the
        table is store-native and bit-identical across backends and runs.
        """
        table = self._canonical_tables.get(n)
        if table is None:
            named = canonical_plans(n)
            plans = [named["iterative"], named["left"], named["right"], self.best_plan(n)]
            table = self.session.measure_plans(plans, tag="suite-canonical")
            self._canonical_tables[n] = table
        return table

    def reference_points(
        self, n: int, metrics: Sequence[str]
    ) -> dict[str, tuple[float, ...]]:
        """Per-reference-algorithm metric tuples at one size.

        Measured metrics come from :meth:`canonical_table`'s columns; model
        metrics are scored with the registry's scorers on the reference
        plans themselves (zero measurements), mirroring the legacy
        :meth:`ExperimentSuite._model_reference_value` path.
        """
        from repro.runtime.metrics import metric_spec

        table = self.canonical_table(n)
        points: dict[str, tuple[float, ...]] = {}
        for index, name in enumerate(REFERENCE_NAMES):
            values = []
            for metric in metrics:
                if str(metric).startswith("model_"):
                    scorer = metric_spec(metric).scorer_factory(self.machine.config)
                    values.append(float(scorer([table.plans[index]])[0]))
                else:
                    values.append(float(table.column(metric)[index]))
            points[name] = tuple(values)
        return points

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.session.close()

    def describe(self) -> str:
        return (
            f"SuiteContext(machine={self.machine_id!r}, seed={self.scale.seed}, "
            f"mode={self.mode}, measured={self.measured_total()})"
        )

    def __repr__(self) -> str:
        return self.describe()
