"""Result types shared by the suite runner, the sinks and the CLI.

The runner produces one :class:`ExperimentResult` per *unit* — the cartesian
product cell ``(machine, seed, experiment)`` — and wraps the whole run in a
:class:`SuiteResult`.  Each result carries three views of the same data:

* ``figure`` — the rich in-process object (a ``HistogramFigure``,
  ``ScatterData``, ``CorrelationSurface``, ... or the suite's own sweep
  type), for callers that continue analysing in Python: the benchmark
  drivers assert against these exactly as they asserted against the legacy
  :class:`~repro.experiments.runner.ExperimentSuite` return values.
* ``tables`` — named :class:`SuiteTable` row sets, the unit sinks stream to
  CSV/JSONL.
* ``artifact`` — a plain JSON-serialisable dict (scalars and small series),
  written verbatim by the figure-artifact sink and compared byte-for-byte
  across backends/services in the bit-identity gates.

``tables`` and ``artifact`` contain only built-in Python types (the
:func:`jsonable` helper strips NumPy scalars/arrays), so two runs that
measure identical values serialise to identical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["SuiteTable", "ExperimentResult", "SuiteResult", "jsonable", "sanitize_unit_id"]


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` to JSON-serialisable built-ins.

    NumPy scalars become Python ints/floats, arrays become lists, tuples
    become lists, mapping keys are coerced to strings (JSON object keys) and
    non-finite floats survive as the strings ``"nan"`` / ``"inf"`` /
    ``"-inf"`` so artifacts stay loadable by strict JSON parsers.
    """
    if isinstance(value, (bool, str)) or value is None:
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        out = float(value)
        if out != out:
            return "nan"
        if out == float("inf"):
            return "inf"
        if out == float("-inf"):
            return "-inf"
        return out
    if isinstance(value, np.ndarray):
        return [jsonable(item) for item in value.tolist()]
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonable(item) for item in items]
    return str(value)


def sanitize_unit_id(unit_id: str) -> str:
    """A unit id rendered safe for use as a file name stem."""
    return unit_id.replace("/", "__").replace(":", "_")


@dataclass(frozen=True)
class SuiteTable:
    """One named, sink-writable table: a header row plus data rows."""

    headers: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]

    @classmethod
    def build(cls, headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> "SuiteTable":
        width = len(tuple(headers))
        clean_rows = []
        for row in rows:
            cells = tuple(jsonable(cell) for cell in row)
            if len(cells) != width:
                raise ValueError(
                    f"table row has {len(cells)} cells for {width} headers: {cells!r}"
                )
            clean_rows.append(cells)
        return cls(headers=tuple(str(h) for h in headers), rows=tuple(clean_rows))

    def as_dicts(self) -> list[dict[str, Any]]:
        """Rows as dicts keyed by header (the JSONL sink's row shape)."""
        return [dict(zip(self.headers, row)) for row in self.rows]


@dataclass
class ExperimentResult:
    """Outcome of one suite unit — ``(machine, seed, experiment)``."""

    unit_id: str
    experiment_id: str
    kind: str
    machine_id: str
    seed: int
    #: ``"complete"``, ``"skipped"`` (manifest said already done) or ``"failed"``.
    status: str
    #: Measurements this unit's execution put on the backend/service (0 when
    #: everything came from the store, and always 0 for skipped units).
    measured: int = 0
    tables: dict[str, SuiteTable] = field(default_factory=dict)
    artifact: dict[str, Any] = field(default_factory=dict)
    #: The rich in-process figure object (``None`` for skipped/failed units).
    figure: Any = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("complete", "skipped")


@dataclass
class SuiteResult:
    """Everything one :meth:`~repro.suite.runner.SuiteRun.run` produced."""

    spec_name: str
    spec_hash: str
    results: list[ExperimentResult] = field(default_factory=list)
    manifest_path: str | None = None
    #: ``baseline_measured[context_id][baseline]`` — measurements spent
    #: materialising each shared baseline (empty on a warm store resume).
    baseline_measured: dict[str, dict[str, int]] = field(default_factory=dict)

    # -- aggregate views ---------------------------------------------------------

    @property
    def completed(self) -> list[ExperimentResult]:
        return [r for r in self.results if r.status == "complete"]

    @property
    def skipped(self) -> list[ExperimentResult]:
        return [r for r in self.results if r.status == "skipped"]

    @property
    def failed(self) -> list[ExperimentResult]:
        return [r for r in self.results if r.status == "failed"]

    @property
    def total_measured(self) -> int:
        """Measurements the whole run performed (0 on a warm store resume).

        Counts both the shared baselines and every unit's own execution.
        """
        baseline = sum(
            sum(per_baseline.values()) for per_baseline in self.baseline_measured.values()
        )
        return baseline + sum(r.measured for r in self.results)

    @property
    def ok(self) -> bool:
        return not self.failed

    def statuses(self) -> dict[str, str]:
        """Unit id to status, in execution order."""
        return {r.unit_id: r.status for r in self.results}

    # -- lookup ------------------------------------------------------------------

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def get(
        self,
        experiment_id: str,
        machine: str | None = None,
        seed: int | None = None,
    ) -> ExperimentResult:
        """The unique result of ``experiment_id`` (narrow by machine/seed).

        Raises :class:`KeyError` when no unit matches and :class:`ValueError`
        when several do (a multi-machine or multi-seed suite needs the extra
        coordinates).
        """
        matches = [
            r
            for r in self.results
            if r.experiment_id == experiment_id
            and (machine is None or r.machine_id == machine)
            and (seed is None or r.seed == seed)
        ]
        if not matches:
            known = sorted({r.experiment_id for r in self.results})
            raise KeyError(f"no result for experiment {experiment_id!r}; ran: {known}")
        if len(matches) > 1:
            cells = [(r.machine_id, r.seed) for r in matches]
            raise ValueError(
                f"experiment {experiment_id!r} ran in {len(matches)} contexts "
                f"{cells}; pass machine= and/or seed= to disambiguate"
            )
        return matches[0]

    def figure(self, experiment_id: str, machine: str | None = None, seed: int | None = None) -> Any:
        """The rich figure object of one experiment (see :meth:`get`)."""
        return self.get(experiment_id, machine=machine, seed=seed).figure

    def artifact(
        self, experiment_id: str, machine: str | None = None, seed: int | None = None
    ) -> dict[str, Any]:
        """The JSON artifact dict of one experiment (see :meth:`get`)."""
        return self.get(experiment_id, machine=machine, seed=seed).artifact

    def describe(self) -> str:
        """One line per unit: status, measurement count, experiment."""
        lines = [
            f"suite {self.spec_name!r} [{self.spec_hash[:12]}]: "
            f"{len(self.completed)} complete, {len(self.skipped)} skipped, "
            f"{len(self.failed)} failed, {self.total_measured} measurements"
        ]
        for r in self.results:
            note = f"  ({r.error})" if r.error else ""
            lines.append(f"  {r.status:>8}  measured={r.measured:<6} {r.unit_id}{note}")
        return "\n".join(lines)
