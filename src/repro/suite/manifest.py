"""The run manifest: spec hash, machine hashes, seeds, per-unit status.

The manifest is the suite's resume ledger.  It records which spec (by
content hash) produced the artifacts in a directory, which machines (by
configuration content hash) and seeds were covered, and — per unit — the
status, the number of measurements performed and the sinks written.

Resume semantics are two-layered and *store-native*:

* the **store** already makes re-measurement free (campaigns, canonical
  tables and cost records replay from cache with zero measurements);
* the **manifest** makes re-*derivation* free: a unit recorded as complete
  (or previously skipped) whose requested sinks are all already written is
  skipped outright — no session, no baselines, no recompute.

A manifest whose ``spec_hash`` does not match the current spec is discarded
(the directory belonged to a different suite), never partially trusted.
The file is written atomically (``.tmp`` + rename) and flushed after every
unit, so a SIGKILL mid-run loses at most the in-flight unit.
"""

from __future__ import annotations

import json
import os
from typing import Any, Sequence

from repro.runtime.store import machine_config_hash
from repro.suite.spec import SuiteSpec

__all__ = ["Manifest", "MANIFEST_VERSION"]

MANIFEST_VERSION = 1

#: Statuses that mean "this unit's results already exist".
_DONE = ("complete", "skipped")


class Manifest:
    """Per-run, atomically persisted unit ledger (``path=None`` = in-memory)."""

    def __init__(self, path: str | None):
        self.path = path
        self.payload: dict[str, Any] = {}
        self._loaded_units: dict[str, dict[str, Any]] = {}

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, spec: SuiteSpec) -> None:
        """Start (or resume) a run of ``spec``.

        Loads the previous manifest when it exists *and* its spec hash
        matches; otherwise starts fresh.  Prior unit records become the
        skip candidates consulted by :meth:`completed`.
        """
        spec_hash = spec.spec_hash()
        previous: dict[str, Any] = {}
        if self.path is not None and os.path.exists(self.path):
            try:
                with open(self.path, "r", encoding="utf-8") as handle:
                    previous = json.load(handle)
            except (OSError, json.JSONDecodeError):
                previous = {}
        if previous.get("spec_hash") == spec_hash:
            self._loaded_units = dict(previous.get("units", {}))
        else:
            self._loaded_units = {}
        self.payload = {
            "version": MANIFEST_VERSION,
            "spec_name": spec.name,
            "spec_hash": spec_hash,
            "machines": {
                m.id: machine_config_hash(m.build().config) for m in spec.machines
            },
            "seeds": list(spec.seeds),
            "baselines": {},
            "units": dict(self._loaded_units),
        }
        self.flush()

    def flush(self) -> None:
        """Atomically persist the current state (no-op for in-memory)."""
        if self.path is None:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    # -- queries -----------------------------------------------------------------

    def completed(self, unit_id: str, sink_names: Sequence[str]) -> bool:
        """True when ``unit_id`` can be skipped for this run's sinks.

        A unit skips when a prior record says it completed (or was itself a
        skip of a completed unit) *and* every sink the current run wants is
        among the sinks already written for it.
        """
        record = self._loaded_units.get(unit_id)
        if not record or record.get("status") not in _DONE:
            return False
        return set(sink_names) <= set(record.get("sinks", []))

    def unit(self, unit_id: str) -> dict[str, Any] | None:
        """The current record of one unit (or ``None``)."""
        return self.payload.get("units", {}).get(unit_id)

    # -- recording ---------------------------------------------------------------

    def record_baseline(self, context_id: str, baseline: str, measured: int) -> None:
        """Record one baseline materialisation (bookkeeping, not skip state)."""
        baselines = self.payload.setdefault("baselines", {})
        baselines.setdefault(context_id, {})[baseline] = int(measured)
        self.flush()

    def record_unit(
        self,
        unit_id: str,
        status: str,
        *,
        measured: int = 0,
        sinks: Sequence[str] = (),
        error: str | None = None,
    ) -> None:
        """Record one unit's outcome and flush.

        A ``"skipped"`` record preserves the prior record's sink list (the
        files are still on disk and still cover future runs asking for a
        subset of them).
        """
        record: dict[str, Any] = {
            "status": status,
            "measured": int(measured),
            "sinks": sorted(sinks),
        }
        if status == "skipped":
            prior = self._loaded_units.get(unit_id, {})
            record["sinks"] = sorted(set(prior.get("sinks", [])) | set(sinks))
        if error is not None:
            record["error"] = error
        self.payload.setdefault("units", {})[unit_id] = record
        self.flush()
