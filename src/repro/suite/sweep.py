"""The objective-sweep experiment: rank disagreement over one record cache.

The paper's model-comparison story — "does a cheaper objective rank plans
the same way measured cycles do?" — recast as a first-class experiment.
For every requested size, one RSU plan population is drawn (the same
deterministic draw the campaigns use), the union of all objectives' metrics
is fetched with **one** :meth:`CostEngine.records` call, and every
objective is then evaluated purely from those records:

* the *first* objective's counter metrics cost one measurement per distinct
  plan (all counters of a plan populate together);
* every further objective — including α·I+β·M composites and analytic
  ``model_*`` metrics — costs **zero extra measurements**;
* on a warm store, even the first objective costs nothing: the records
  replay from the append-log cache.

The report is two sink-writable tables: per-size *best-plan ranks* (each
objective's winner and where that plan ranks under every other objective)
and the pairwise *disagreement* table (Spearman's rho and Kendall's tau-b
between the objectives' value vectors over the shared population).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.rank import kendall_tau, rank_values, spearman_correlation
from repro.config import ExperimentScale
from repro.runtime.campaigns import sample_units
from repro.runtime.objectives import Objective, WeightedObjective, resolve_objective
from repro.suite.context import SuiteContext
from repro.suite.results import SuiteTable, jsonable
from repro.suite.spec import SpecError
from repro.wht.encoding import plan_key

__all__ = [
    "DEFAULT_OBJECTIVES",
    "ObjectiveSweepResult",
    "parse_objective",
    "validate_sweep_options",
    "build_objective_sweep",
]

#: The paper's model-comparison set: measured cycles (ground truth), the two
#: single-metric models, and the default combined model.
DEFAULT_OBJECTIVES: tuple[Any, ...] = (
    "cycles",
    "instructions",
    "l1_misses",
    {"alpha": 1.0, "beta": 0.05},
)


def parse_objective(entry: Any) -> Objective:
    """An :class:`Objective` from its JSON spec form.

    Accepted forms: a metric name (``"cycles"``), ``{"alpha": a, "beta": b}``
    (the paper's composite ``a*I + b*M``), ``{"weights": {metric: w, ...}}``
    (an arbitrary linear combination), or a ready :class:`Objective`.
    """
    if isinstance(entry, Objective):
        return entry
    if isinstance(entry, str):
        try:
            return resolve_objective(entry)
        except ValueError as exc:
            raise SpecError(str(exc)) from None
    if isinstance(entry, Mapping):
        entry = dict(entry)
        if set(entry) == {"alpha", "beta"}:
            try:
                return WeightedObjective.combined(
                    alpha=float(entry["alpha"]), beta=float(entry["beta"])
                )
            except (TypeError, ValueError) as exc:
                raise SpecError(f"alpha/beta must be numbers: {exc}") from None
        if set(entry) == {"weights"}:
            weights = entry["weights"]
            if not isinstance(weights, Mapping) or not weights:
                raise SpecError("'weights' must be a non-empty {metric: weight} object")
            try:
                return WeightedObjective(
                    {str(name): float(weight) for name, weight in weights.items()}
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise SpecError(f"invalid weights: {exc}") from None
        raise SpecError(
            f"objective object must have keys {{'alpha', 'beta'}} or "
            f"{{'weights'}}, got {sorted(entry)}"
        )
    raise SpecError(
        f"expected a metric name or an objective object, got {type(entry).__name__}"
    )


def _sweep_axes(
    options: Mapping[str, Any], scale: ExperimentScale
) -> tuple[list[Objective], list[int], int]:
    objectives = [parse_objective(entry) for entry in options.get("objectives", DEFAULT_OBJECTIVES)]
    sizes_option = options.get("sizes")
    if sizes_option is None:
        sizes = sorted({scale.small_size, scale.large_size})
    else:
        sizes = [int(s) for s in sizes_option]
    count = int(options.get("count", scale.sample_count))
    return objectives, sizes, count


def validate_sweep_options(
    options: Mapping[str, Any], path: str, scale: ExperimentScale
) -> None:
    """Spec-time validation of one objective_sweep experiment's options."""
    raw = options.get("objectives", DEFAULT_OBJECTIVES)
    if not isinstance(raw, (list, tuple)) or len(raw) < 2:
        raise SpecError(
            f"{path}.options.objectives: must be a list of at least two objectives"
        )
    labels = []
    for index, entry in enumerate(raw):
        try:
            labels.append(parse_objective(entry).describe())
        except SpecError as exc:
            raise SpecError(f"{path}.options.objectives[{index}]: {exc}") from None
    if len(set(labels)) != len(labels):
        dupes = sorted({label for label in labels if labels.count(label) > 1})
        raise SpecError(f"{path}.options.objectives: duplicate objectives {dupes}")
    sizes = options.get("sizes")
    if sizes is not None:
        if not isinstance(sizes, (list, tuple)) or not sizes:
            raise SpecError(f"{path}.options.sizes: must be a non-empty list of integers")
        for s in sizes:
            if not isinstance(s, int) or s < 1:
                raise SpecError(f"{path}.options.sizes: {s!r} is not a positive integer")
    count = options.get("count")
    if count is not None and (not isinstance(count, int) or count < 2):
        raise SpecError(f"{path}.options.count: must be an integer >= 2")


@dataclass(frozen=True)
class ObjectiveSweepResult:
    """In-process view of one objective sweep (the unit's ``figure``)."""

    sizes: tuple[int, ...]
    labels: tuple[str, ...]
    #: ``values[n][label]`` — the objective's value vector over the size's
    #: shared plan population (one entry per distinct plan, draw order).
    values: dict[int, dict[str, np.ndarray]]
    #: ``population[n]`` — the distinct plans, rendered in grammar form.
    population: dict[int, tuple[str, ...]]
    #: Measurements the shared records pass performed, per size.
    population_measured: dict[int, int]

    def ranks(self, n: int, label: str) -> np.ndarray:
        """Tied-average ascending ranks of one objective at one size."""
        return rank_values(self.values[n][label])

    def best_plan(self, n: int, label: str) -> str:
        """The winning plan of one objective at one size."""
        return self.population[n][int(np.argmin(self.values[n][label]))]

    def disagreement(self, n: int, label_a: str, label_b: str) -> tuple[float, float]:
        """``(spearman_rho, kendall_tau)`` between two objectives at one size."""
        a, b = self.values[n][label_a], self.values[n][label_b]
        return spearman_correlation(a, b), kendall_tau(a, b)


def build_objective_sweep(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    """Builder for the ``objective_sweep`` experiment kind."""
    objectives, sizes, count = _sweep_axes(options, ctx.scale)
    labels = [objective.describe() for objective in objectives]

    # Union of every objective's metrics, first-seen order: one records()
    # call per size serves every objective.
    metrics: list[str] = []
    for objective in objectives:
        for name in objective.metrics:
            if name not in metrics:
                metrics.append(name)

    engine = ctx.session.cost_engine()
    values: dict[int, dict[str, np.ndarray]] = {}
    population: dict[int, tuple[str, ...]] = {}
    population_measured: dict[int, int] = {}
    best_rows: list[list[Any]] = []
    disagreement_rows: list[list[Any]] = []

    for n in sizes:
        # The same deterministic RSU draw the campaigns use; duplicates
        # collapse (records are per distinct plan anyway).
        seen: set[str] = set()
        plans = []
        for unit in sample_units(n, count, ctx.scale.seed):
            key = plan_key(unit.plan)
            if key not in seen:
                seen.add(key)
                plans.append(unit.plan)
        measured_before = int(getattr(engine, "measured", 0))
        records = engine.records(plans, metrics)
        population_measured[n] = int(getattr(engine, "measured", 0)) - measured_before

        values[n] = {
            label: np.array(
                [objective.value(record.values) for record in records], dtype=float
            )
            for label, objective in zip(labels, objectives)
        }
        population[n] = tuple(str(plan) for plan in plans)

        rank_arrays = {label: rank_values(values[n][label]) for label in labels}
        for label in labels:
            winner = int(np.argmin(values[n][label]))
            best_rows.append(
                [n, label, population[n][winner]]
                + [float(rank_arrays[other][winner]) for other in labels]
            )
        for i, label_a in enumerate(labels):
            for label_b in labels[i + 1 :]:
                disagreement_rows.append(
                    [
                        n,
                        label_a,
                        label_b,
                        spearman_correlation(values[n][label_a], values[n][label_b]),
                        kendall_tau(values[n][label_a], values[n][label_b]),
                    ]
                )

    result = ObjectiveSweepResult(
        sizes=tuple(sizes),
        labels=tuple(labels),
        values=values,
        population=population,
        population_measured=population_measured,
    )
    tables = {
        "best_plan_ranks": SuiteTable.build(
            ["n", "objective", "best_plan"] + [f"rank_under[{label}]" for label in labels],
            best_rows,
        ),
        "disagreement": SuiteTable.build(
            ["n", "objective_a", "objective_b", "spearman_rho", "kendall_tau"],
            disagreement_rows,
        ),
    }
    artifact = {
        "sizes": sizes,
        "count": count,
        "objectives": labels,
        "metrics": metrics,
        "population_size": {str(n): len(population[n]) for n in sizes},
        "population_measured": {str(n): population_measured[n] for n in sizes},
        # Structural invariant of the sweep: objectives beyond the first are
        # evaluated from the shared records with no further engine calls.
        "extra_measurements_after_records": 0,
        "best_plan_ranks": [
            dict(zip(tables["best_plan_ranks"].headers, row))
            for row in tables["best_plan_ranks"].rows
        ],
        "disagreement": [
            dict(zip(tables["disagreement"].headers, row))
            for row in tables["disagreement"].rows
        ],
    }
    return result, tables, jsonable(artifact)
