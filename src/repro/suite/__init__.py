"""Declarative experiment suites: ``repro.suite(spec).run()``.

One JSON/dict spec declares machines x scales x seeds x experiments
(figures, summary tables, objective sweeps, searches); the runner executes
it baseline-first through a :class:`~repro.runtime.session.Session` (any
backend, store, or connected/remote service), streams results to pluggable
sinks, and records a resume manifest.  See DESIGN.md section 14.

Package map:

* :mod:`~repro.suite.spec` — :class:`SuiteSpec` validation and hashing,
* :mod:`~repro.suite.context` — per-(machine, seed) sessions + baselines,
* :mod:`~repro.suite.figures` — the spec-addressable experiment kinds,
* :mod:`~repro.suite.sweep` — the objective-sweep / rank-disagreement kind,
* :mod:`~repro.suite.sinks` — CSV/JSONL/figure-artifact/memory sinks,
* :mod:`~repro.suite.manifest` — the per-unit resume ledger,
* :mod:`~repro.suite.runner` — DAG expansion and execution,
* :mod:`~repro.suite.api` — the ``repro.suite(...)`` façade,
* :mod:`~repro.suite.cli` — ``python -m repro.suite``.

Note ``repro.suite`` the *name* is rebound to :func:`repro.suite.api.suite`
at the end of ``repro/__init__.py`` (callable façade), while this package
stays importable as ``from repro.suite.spec import ...`` and runnable as
``python -m repro.suite``.
"""

from __future__ import annotations

from repro.suite.api import suite
from repro.suite.context import CountingBackend, SuiteContext
from repro.suite.figures import SuiteSweep, experiment_kinds
from repro.suite.manifest import Manifest
from repro.suite.results import ExperimentResult, SuiteResult, SuiteTable
from repro.suite.runner import SuiteRun
from repro.suite.sinks import (
    CSVSink,
    FigureArtifactSink,
    JSONLSink,
    MemorySink,
    ResultSink,
)
from repro.suite.spec import ExperimentSpec, MachineSpec, SpecError, SuiteSpec, load_spec
from repro.suite.sweep import ObjectiveSweepResult, parse_objective

__all__ = [
    "suite",
    "SuiteRun",
    "SuiteSpec",
    "MachineSpec",
    "ExperimentSpec",
    "SpecError",
    "load_spec",
    "SuiteResult",
    "ExperimentResult",
    "SuiteTable",
    "SuiteSweep",
    "SuiteContext",
    "CountingBackend",
    "Manifest",
    "ResultSink",
    "CSVSink",
    "JSONLSink",
    "FigureArtifactSink",
    "MemorySink",
    "ObjectiveSweepResult",
    "parse_objective",
    "experiment_kinds",
]
