"""Declarative suite specifications.

A :class:`SuiteSpec` is the JSON-friendly description of one paper
reproduction: which machines to simulate, at what experiment scale, under
which seeds, and which experiments (figures, summary tables, objective
sweeps, searches) to run.  Specs are plain data — a dict in code or a
``.json`` file on disk — and validation happens eagerly with actionable,
path-prefixed error messages (``experiments[3].kind: unknown kind ...``)
rather than deep in the runner.

The canonical JSON shape::

    {
      "name": "paper-figures",
      "machines": ["default"],
      "scale": "default",
      "seeds": [20070122],
      "experiments": [
        "figure1",
        {"id": "fig9", "kind": "figure9"},
        {"id": "sweep", "kind": "objective_sweep",
         "options": {"objectives": ["cycles", "instructions",
                                    {"alpha": 1.0, "beta": 0.05}]}}
      ]
    }

``machines`` entries are preset names or inline machine configurations (the
wire form of :class:`~repro.machine.machine.MachineConfig`); ``scale`` is a
preset name or a dict of :class:`~repro.config.ExperimentScale` field
overrides; ``seeds`` defaults to the scale's seed; a bare string in
``experiments`` is shorthand for ``{"id": kind, "kind": kind}``.  An
optional ``connect`` key — one ``tcp://``/``unix://`` URL or a list of
them — names the campaign server(s) the suite runs against by default: a
single URL makes every context a remote tenant, several make it a fleet
tenant striping over the member ring (DESIGN.md section 15).  The
``connect=`` argument of :func:`repro.suite` overrides it.

:func:`SuiteSpec.spec_hash` digests the normalised spec (sorted-key JSON),
so the manifest can detect that a store/manifest pair belongs to a
different spec and refuse to resume from it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.config import ExperimentScale, default_scale
from repro.machine.configs import MACHINE_PRESETS
from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.runtime.session import SCALE_PRESETS
from repro.runtime.transport import machine_config_from_wire, machine_config_to_wire

__all__ = ["SpecError", "MachineSpec", "ExperimentSpec", "SuiteSpec", "load_spec", "spec_from_dict"]


class SpecError(ValueError):
    """A suite spec failed validation; the message names the offending path."""


def _known_kinds() -> tuple[str, ...]:
    # Deferred: the kind registry lives in figures.py, which imports this
    # module for the spec types.
    from repro.suite.figures import experiment_kinds

    return experiment_kinds()


@dataclass(frozen=True)
class MachineSpec:
    """One machine axis entry: a preset name or an inline configuration."""

    id: str
    preset: str | None = None
    config: MachineConfig | None = None

    def build(self) -> SimulatedMachine:
        if self.config is not None:
            return SimulatedMachine(self.config)
        return SimulatedMachine(MACHINE_PRESETS[self.preset]())

    def as_dict(self) -> dict[str, Any]:
        if self.preset is not None:
            return {"id": self.id, "preset": self.preset}
        return {"id": self.id, "config": machine_config_to_wire(self.config)}


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment axis entry: a unique id, a registered kind, options."""

    id: str
    kind: str
    options: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"id": self.id, "kind": self.kind}
        if self.options:
            out["options"] = self.options
        return out


def _parse_machine(entry: Any, path: str) -> MachineSpec:
    if isinstance(entry, str):
        if entry not in MACHINE_PRESETS:
            raise SpecError(
                f"{path}: unknown machine preset {entry!r}; "
                f"available: {sorted(MACHINE_PRESETS)}"
            )
        return MachineSpec(id=entry, preset=entry)
    if isinstance(entry, Mapping):
        entry = dict(entry)
        unknown = set(entry) - {"id", "preset", "config"}
        if unknown:
            raise SpecError(
                f"{path}: unknown machine keys {sorted(unknown)}; "
                "expected 'id' plus exactly one of 'preset' or 'config'"
            )
        preset = entry.get("preset")
        config_payload = entry.get("config")
        if (preset is None) == (config_payload is None):
            raise SpecError(f"{path}: give exactly one of 'preset' or 'config'")
        if preset is not None:
            if preset not in MACHINE_PRESETS:
                raise SpecError(
                    f"{path}.preset: unknown machine preset {preset!r}; "
                    f"available: {sorted(MACHINE_PRESETS)}"
                )
            machine_id = entry.get("id", preset)
            return MachineSpec(id=str(machine_id), preset=preset)
        try:
            config = machine_config_from_wire(config_payload)
        except Exception as exc:
            raise SpecError(f"{path}.config: not a valid machine configuration: {exc}") from exc
        machine_id = entry.get("id", config.name)
        return MachineSpec(id=str(machine_id), config=config)
    raise SpecError(
        f"{path}: expected a preset name or a machine object, got {type(entry).__name__}"
    )


def _parse_scale(entry: Any, path: str) -> ExperimentScale:
    if entry is None:
        return default_scale()
    if isinstance(entry, ExperimentScale):
        return entry
    if isinstance(entry, str):
        if entry not in SCALE_PRESETS:
            raise SpecError(
                f"{path}: unknown scale preset {entry!r}; available: {sorted(SCALE_PRESETS)}"
            )
        return SCALE_PRESETS[entry]()
    if isinstance(entry, Mapping):
        fields = {f.name for f in dataclasses.fields(ExperimentScale)}
        unknown = set(entry) - fields
        if unknown:
            raise SpecError(
                f"{path}: unknown scale keys {sorted(unknown)}; available: {sorted(fields)}"
            )
        try:
            return dataclasses.replace(default_scale(), **{k: int(v) for k, v in entry.items()})
        except (TypeError, ValueError) as exc:
            raise SpecError(f"{path}: invalid scale overrides: {exc}") from exc
    raise SpecError(
        f"{path}: expected a scale preset name or a field-override object, "
        f"got {type(entry).__name__}"
    )


def _parse_experiment(entry: Any, path: str) -> ExperimentSpec:
    kinds = _known_kinds()
    if isinstance(entry, str):
        entry = {"id": entry, "kind": entry}
    if not isinstance(entry, Mapping):
        raise SpecError(
            f"{path}: expected a kind name or an experiment object, got {type(entry).__name__}"
        )
    entry = dict(entry)
    unknown = set(entry) - {"id", "kind", "options"}
    if unknown:
        raise SpecError(
            f"{path}: unknown experiment keys {sorted(unknown)}; "
            "expected 'kind' plus optional 'id' and 'options'"
        )
    kind = entry.get("kind")
    if not isinstance(kind, str):
        raise SpecError(f"{path}.kind: required and must be a string")
    if kind not in kinds:
        raise SpecError(f"{path}.kind: unknown kind {kind!r}; available: {sorted(kinds)}")
    options = entry.get("options", {})
    if not isinstance(options, Mapping):
        raise SpecError(f"{path}.options: must be an object, got {type(options).__name__}")
    experiment_id = entry.get("id", kind)
    if not isinstance(experiment_id, str) or not experiment_id:
        raise SpecError(f"{path}.id: must be a non-empty string")
    if "/" in experiment_id or "@" in experiment_id:
        raise SpecError(f"{path}.id: {experiment_id!r} may not contain '/' or '@'")
    return ExperimentSpec(id=experiment_id, kind=kind, options=dict(options))


@dataclass(frozen=True)
class SuiteSpec:
    """A validated suite specification (see the module docstring)."""

    name: str
    machines: tuple[MachineSpec, ...]
    scale: ExperimentScale
    seeds: tuple[int, ...]
    experiments: tuple[ExperimentSpec, ...]
    #: Default campaign server URL(s): empty = in-process, one = remote
    #: session, several = fleet client over the member ring.
    connect: tuple[str, ...] = ()

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SuiteSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"spec: expected an object, got {type(payload).__name__}")
        payload = dict(payload)
        unknown = set(payload) - {"name", "machines", "scale", "seeds", "experiments", "connect"}
        if unknown:
            raise SpecError(
                f"spec: unknown top-level keys {sorted(unknown)}; expected "
                "'name', 'machines', 'scale', 'seeds', 'experiments', 'connect'"
            )
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise SpecError("spec.name: required and must be a non-empty string")

        raw_machines = payload.get("machines", ["default"])
        if not isinstance(raw_machines, Sequence) or isinstance(raw_machines, (str, bytes)):
            raise SpecError("spec.machines: must be a list of machine entries")
        if not raw_machines:
            raise SpecError("spec.machines: must name at least one machine")
        machines = tuple(
            _parse_machine(entry, f"machines[{index}]")
            for index, entry in enumerate(raw_machines)
        )
        machine_ids = [m.id for m in machines]
        if len(set(machine_ids)) != len(machine_ids):
            dupes = sorted({m for m in machine_ids if machine_ids.count(m) > 1})
            raise SpecError(
                f"spec.machines: duplicate machine ids {dupes}; give inline "
                "configurations distinct 'id' values"
            )

        scale = _parse_scale(payload.get("scale"), "scale")

        raw_seeds = payload.get("seeds")
        if raw_seeds is None:
            seeds: tuple[int, ...] = (scale.seed,)
        else:
            if not isinstance(raw_seeds, Sequence) or isinstance(raw_seeds, (str, bytes)):
                raise SpecError("spec.seeds: must be a list of integers")
            if not raw_seeds:
                raise SpecError("spec.seeds: must contain at least one seed")
            try:
                seeds = tuple(int(s) for s in raw_seeds)
            except (TypeError, ValueError):
                raise SpecError(f"spec.seeds: must be integers, got {raw_seeds!r}") from None
            if len(set(seeds)) != len(seeds):
                raise SpecError(f"spec.seeds: duplicate seeds in {list(seeds)}")

        raw_experiments = payload.get("experiments")
        if not isinstance(raw_experiments, Sequence) or isinstance(raw_experiments, (str, bytes)):
            raise SpecError("spec.experiments: must be a list of experiment entries")
        if not raw_experiments:
            raise SpecError("spec.experiments: must declare at least one experiment")
        experiments = tuple(
            _parse_experiment(entry, f"experiments[{index}]")
            for index, entry in enumerate(raw_experiments)
        )
        experiment_ids = [e.id for e in experiments]
        if len(set(experiment_ids)) != len(experiment_ids):
            dupes = sorted({e for e in experiment_ids if experiment_ids.count(e) > 1})
            raise SpecError(
                f"spec.experiments: duplicate experiment ids {dupes}; repeated "
                "kinds need explicit distinct 'id' values"
            )

        raw_connect = payload.get("connect")
        if raw_connect is None:
            connect: tuple[str, ...] = ()
        elif isinstance(raw_connect, str):
            connect = (raw_connect,)
        elif isinstance(raw_connect, Sequence) and not isinstance(raw_connect, bytes):
            if not all(isinstance(url, str) and url for url in raw_connect):
                raise SpecError("spec.connect: must be a URL string or a list of URL strings")
            connect = tuple(raw_connect)
        else:
            raise SpecError(
                f"spec.connect: expected a URL string or a list of URL strings, "
                f"got {type(raw_connect).__name__}"
            )
        if len(set(connect)) != len(connect):
            raise SpecError(f"spec.connect: duplicate server URLs in {list(connect)}")

        spec = cls(
            name=name,
            machines=machines,
            scale=scale,
            seeds=seeds,
            experiments=experiments,
            connect=connect,
        )
        # Kind-specific option validation (objectives, sizes, ...) happens in
        # the registry so the error points at the offending experiment.
        from repro.suite.figures import validate_options

        for index, experiment in enumerate(experiments):
            validate_options(experiment, f"experiments[{index}]", scale)
        return spec

    # -- derived views -----------------------------------------------------------

    def with_scale(self, scale: "ExperimentScale | str | Mapping[str, Any]") -> "SuiteSpec":
        """This spec at a different experiment scale (seeds re-derived).

        Seeds that merely mirrored the old scale's seed follow the new
        scale; explicitly divergent seed lists are kept.
        """
        new_scale = _parse_scale(scale, "scale")
        seeds = self.seeds
        if seeds == (self.scale.seed,):
            seeds = (new_scale.seed,)
        return dataclasses.replace(self, scale=new_scale, seeds=seeds)

    def to_dict(self) -> dict[str, Any]:
        """The normalised plain-dict form (JSON-ready, hash-stable).

        ``connect`` only appears when set, so connect-free specs hash the
        same as they did before the key existed (manifests keep resuming).
        """
        out = {
            "name": self.name,
            "machines": [m.as_dict() for m in self.machines],
            "scale": {
                f.name: getattr(self.scale, f.name)
                for f in dataclasses.fields(ExperimentScale)
            },
            "seeds": list(self.seeds),
            "experiments": [e.as_dict() for e in self.experiments],
        }
        if self.connect:
            out["connect"] = list(self.connect)
        return out

    def spec_hash(self) -> str:
        """SHA-256 of the normalised spec (sorted-key canonical JSON)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        axes = (
            f"{len(self.machines)} machine(s) x {len(self.seeds)} seed(s) x "
            f"{len(self.experiments)} experiment(s)"
        )
        connect = f", connect={list(self.connect)}" if self.connect else ""
        return f"SuiteSpec({self.name!r}: {axes}, scale=[{self.scale.describe()}]{connect})"


def spec_from_dict(payload: "Mapping[str, Any] | SuiteSpec") -> SuiteSpec:
    """Coerce a mapping (or pass through a ready spec) to a :class:`SuiteSpec`."""
    if isinstance(payload, SuiteSpec):
        return payload
    return SuiteSpec.from_dict(payload)


def load_spec(path: str) -> SuiteSpec:
    """Load and validate a suite spec from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise SpecError(f"cannot read spec file {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec file {path!r} is not valid JSON: {exc}") from exc
    return SuiteSpec.from_dict(payload)
