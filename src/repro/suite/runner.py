"""The suite runner: spec → baseline-first experiment DAG → sinks.

:class:`SuiteRun` expands a validated :class:`~repro.suite.spec.SuiteSpec`
into units (one per ``machine x seed x experiment`` cell) and executes them
context by context:

1. Units whose manifest record says they already completed with all the
   requested sinks are **skipped** — no session is even constructed for a
   context whose units all skip (the warm-resume fast path).
2. For each context with work left, the union of the remaining units'
   baselines is materialised first (``small``/``large`` campaigns, then the
   canonical sweep) — each exactly once, shared by every dependent figure.
3. Each unit's builder runs, its tables/artifact stream to every sink, and
   the manifest records status + measurement count + written sinks, flushed
   atomically after every unit (a SIGKILL loses at most the in-flight
   unit).

A failing unit is recorded as ``failed`` (with the error) and the run
continues; :attr:`SuiteResult.ok` and the CLI exit code report it at the
end.  Everything measured flows through the session's store, so re-running
the same spec against the same store performs zero new measurements even
when the manifest is gone — the manifest only short-circuits the (cheap but
nonzero) re-derivation and re-writing.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.runtime.backends import ExecutionBackend, resolve_backend
from repro.runtime.store import CampaignStore, resolve_store
from repro.suite.context import BASELINE_ORDER, SuiteContext
from repro.suite.figures import build_experiment, kind_baselines
from repro.suite.manifest import Manifest
from repro.suite.results import ExperimentResult, SuiteResult
from repro.suite.sinks import resolve_sinks
from repro.suite.spec import SpecError, SuiteSpec, spec_from_dict

__all__ = ["SuiteRun"]


class SuiteRun:
    """One configured, runnable suite (see :func:`repro.suite.api.suite`)."""

    def __init__(
        self,
        spec: "SuiteSpec | Mapping[str, Any]",
        *,
        store: "str | CampaignStore | None" = "memory",
        backend: "str | ExecutionBackend | None" = None,
        sinks: "Sequence | None" = None,
        artifacts: str | None = None,
        manifest: str | None = None,
        service=None,
        connect: "str | Sequence[str] | None" = None,
        service_fallback: bool = False,
        transport_options: "dict | None" = None,
        dp_max_children: int | None = 2,
    ):
        self.spec = spec_from_dict(spec)
        self.artifacts = artifacts
        self.sinks = resolve_sinks(sinks, artifacts)
        if manifest is None and artifacts is not None:
            import os

            manifest = os.path.join(artifacts, "manifest.json")
        self.manifest = Manifest(manifest)
        self._store_spec = store
        self._backend_spec = backend
        self.service = service
        self.connect = connect
        self.service_fallback = service_fallback
        self.transport_options = dict(transport_options or {})
        self.dp_max_children = dp_max_children

    # -- context construction ----------------------------------------------------

    def _build_context(self, machine_spec, seed: int) -> SuiteContext:
        import dataclasses

        scale = dataclasses.replace(self.spec.scale, seed=seed)
        backend = None
        if self._backend_spec is not None and self.service is None:
            backend = resolve_backend(self._backend_spec)
        return SuiteContext(
            machine_spec.id,
            machine_spec.build(),
            scale,
            backend=backend,
            store=resolve_store(self._store_spec),
            service=self.service,
            connect=self.connect,
            service_fallback=self.service_fallback,
            transport_options=self.transport_options,
            dp_max_children=self.dp_max_children,
        )

    # -- execution ---------------------------------------------------------------

    def _select(self, values, requested, label: str, key=lambda v: v):
        if requested is None:
            return list(values)
        requested = list(requested)
        known = {key(v) for v in values}
        unknown = [r for r in requested if r not in known]
        if unknown:
            raise SpecError(
                f"unknown {label}(s) {unknown}; spec declares: {sorted(known)}"
            )
        return [v for v in values if key(v) in requested]

    def run(
        self,
        *,
        experiments: "Sequence[str] | None" = None,
        machines: "Sequence[str] | None" = None,
        seeds: "Sequence[int] | None" = None,
    ) -> SuiteResult:
        """Execute the suite (optionally narrowed along any axis)."""
        spec = self.spec
        selected_experiments = self._select(
            spec.experiments, experiments, "experiment", key=lambda e: e.id
        )
        selected_machines = self._select(
            spec.machines, machines, "machine", key=lambda m: m.id
        )
        selected_seeds = self._select(spec.seeds, seeds, "seed")
        sink_names = [sink.name for sink in self.sinks]

        self.manifest.begin(spec)
        result = SuiteResult(
            spec_name=spec.name,
            spec_hash=spec.spec_hash(),
            manifest_path=self.manifest.path,
        )

        for machine_spec in selected_machines:
            for seed in selected_seeds:
                context_id = f"{machine_spec.id}@{seed}"
                units = [
                    (experiment, f"{context_id}/{experiment.id}")
                    for experiment in selected_experiments
                ]
                todo = []
                for experiment, unit_id in units:
                    if self.manifest.completed(unit_id, sink_names):
                        self.manifest.record_unit(
                            unit_id, "skipped", measured=0, sinks=sink_names
                        )
                        result.results.append(
                            ExperimentResult(
                                unit_id=unit_id,
                                experiment_id=experiment.id,
                                kind=experiment.kind,
                                machine_id=machine_spec.id,
                                seed=seed,
                                status="skipped",
                            )
                        )
                    else:
                        todo.append((experiment, unit_id))
                if not todo:
                    continue

                ctx = self._build_context(machine_spec, seed)
                try:
                    self._run_context(ctx, context_id, todo, sink_names, result)
                finally:
                    ctx.close()

        for sink in self.sinks:
            sink.close()
        # Report in spec order (machine, seed, experiment), not execution
        # order (skips are decided before their context runs).
        order = {
            f"{m.id}@{s}/{e.id}": index
            for index, (m, s, e) in enumerate(
                (m, s, e)
                for m in selected_machines
                for s in selected_seeds
                for e in selected_experiments
            )
        }
        result.results.sort(key=lambda r: order[r.unit_id])
        return result

    def _run_context(
        self,
        ctx: SuiteContext,
        context_id: str,
        todo: list,
        sink_names: list[str],
        result: SuiteResult,
    ) -> None:
        # Baseline-first: materialise the union of the remaining units'
        # baselines exactly once, shared by every dependent experiment.
        needed = {
            baseline
            for experiment, _ in todo
            for baseline in kind_baselines(experiment.kind)
        }
        for baseline in BASELINE_ORDER:
            if baseline not in needed:
                continue
            before = ctx.measured_total()
            ctx.materialize(baseline)
            measured = ctx.measured_total() - before
            result.baseline_measured.setdefault(context_id, {})[baseline] = measured
            self.manifest.record_baseline(context_id, baseline, measured)

        for experiment, unit_id in todo:
            before = ctx.measured_total()
            try:
                figure, tables, artifact = build_experiment(ctx, experiment)
                unit = ExperimentResult(
                    unit_id=unit_id,
                    experiment_id=experiment.id,
                    kind=experiment.kind,
                    machine_id=ctx.machine_id,
                    seed=ctx.scale.seed,
                    status="complete",
                    measured=ctx.measured_total() - before,
                    tables=tables,
                    artifact=artifact,
                    figure=figure,
                )
                for sink in self.sinks:
                    sink.write(unit)
            except Exception as exc:  # noqa: BLE001 - recorded, run continues
                unit = ExperimentResult(
                    unit_id=unit_id,
                    experiment_id=experiment.id,
                    kind=experiment.kind,
                    machine_id=ctx.machine_id,
                    seed=ctx.scale.seed,
                    status="failed",
                    measured=ctx.measured_total() - before,
                    error=f"{type(exc).__name__}: {exc}",
                )
            self.manifest.record_unit(
                unit_id,
                unit.status,
                measured=unit.measured,
                sinks=sink_names if unit.status == "complete" else (),
                error=unit.error,
            )
            result.results.append(unit)
