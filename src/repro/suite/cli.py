"""``python -m repro.suite`` — the suite runner's command line.

Subcommands:

* ``run spec.json`` — execute a suite: ``--store`` / ``--artifacts`` for
  persistence, ``--connect`` (repeatable — several URLs make a fleet) for
  a remote service, ``--experiment`` / ``--machine`` / ``--seed``
  (repeatable) to narrow the run.
* ``validate spec.json`` — validate and summarise a spec without running.
* ``describe spec.json`` — summarise a spec plus the resolved connect
  target(s) the run would use (spec ``connect`` key, overridden by
  ``--connect``).
* ``experiments`` — list the registered experiment kinds.

Exit codes: 0 on success, 1 when any unit failed, 2 on a spec/usage error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.suite.figures import experiment_kinds, kind_baselines
from repro.suite.spec import SpecError, load_spec

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.suite",
        description="Run declarative experiment suites (see DESIGN.md section 14).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a suite spec")
    run.add_argument("spec", help="path to the suite spec JSON file")
    run.add_argument(
        "--store",
        default="memory",
        help="campaign store: 'memory', 'none', or a directory path (default: memory)",
    )
    run.add_argument(
        "--artifacts",
        default=None,
        help="output directory for CSV/JSONL/figure sinks and the manifest",
    )
    run.add_argument(
        "--backend",
        default=None,
        help="execution backend preset (serial, batched, multiprocess)",
    )
    run.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="URL",
        help=(
            "run through a remote campaign service (tcp://host:port or "
            "unix://path); repeat to stripe over a fleet of servers"
        ),
    )
    run.add_argument(
        "--experiment",
        action="append",
        default=None,
        help="run only this experiment id (repeatable)",
    )
    run.add_argument(
        "--machine",
        action="append",
        default=None,
        help="run only this machine id (repeatable)",
    )
    run.add_argument(
        "--seed",
        action="append",
        type=int,
        default=None,
        help="run only this seed (repeatable)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the per-unit summary"
    )

    validate = sub.add_parser("validate", help="validate a spec without running it")
    validate.add_argument("spec", help="path to the suite spec JSON file")

    describe = sub.add_parser(
        "describe", help="summarise a spec and its resolved connect target(s)"
    )
    describe.add_argument("spec", help="path to the suite spec JSON file")
    describe.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="URL",
        help="override the spec's connect target(s) (repeatable)",
    )

    sub.add_parser("experiments", help="list the available experiment kinds")
    return parser


def _resolve_connect(flag_urls, spec) -> "list[str]":
    """The connect target list a run would use: ``--connect`` beats the spec."""
    if flag_urls:
        return list(flag_urls)
    return list(spec.connect)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.suite.api import suite

    connect = args.connect
    if connect is not None and len(connect) == 1:
        connect = connect[0]
    run = suite(
        args.spec,
        store=args.store,
        backend=args.backend,
        artifacts=args.artifacts,
        connect=connect,
    )
    result = run.run(
        experiments=args.experiment, machines=args.machine, seeds=args.seed
    )
    if not args.quiet:
        print(result.describe())
    return 0 if result.ok else 1


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    print(spec.describe())
    print(f"spec hash: {spec.spec_hash()}")
    for experiment in spec.experiments:
        baselines = ", ".join(kind_baselines(experiment.kind)) or "(none)"
        print(f"  {experiment.id}: kind={experiment.kind}, baselines: {baselines}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    spec = load_spec(args.spec)
    print(spec.describe())
    print(f"spec hash: {spec.spec_hash()}")
    targets = _resolve_connect(args.connect, spec)
    if not targets:
        print("connect: (none — in-process sessions)")
    elif len(targets) == 1:
        print(f"connect: {targets[0]} (remote session)")
    else:
        print(f"connect: fleet of {len(targets)} member(s)")
        for url in targets:
            print(f"  - {url}")
    for experiment in spec.experiments:
        baselines = ", ".join(kind_baselines(experiment.kind)) or "(none)"
        print(f"  {experiment.id}: kind={experiment.kind}, baselines: {baselines}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    for kind in experiment_kinds():
        baselines = ", ".join(kind_baselines(kind)) or "(none)"
        print(f"{kind}: baselines: {baselines}")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "validate": _cmd_validate,
        "describe": _cmd_describe,
        "experiments": _cmd_experiments,
    }
    try:
        return handlers[args.command](args)
    except SpecError as exc:
        print(f"spec error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
