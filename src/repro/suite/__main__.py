"""Entry point: ``python -m repro.suite run spec.json``."""

from __future__ import annotations

import sys

from repro.suite.cli import main

sys.exit(main())
