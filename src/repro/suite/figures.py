"""The spec-addressable experiment kinds and their builders.

Every experiment kind a :class:`~repro.suite.spec.SuiteSpec` may declare is
registered here: its shared baselines (the runner materialises the union of
the baselines of all non-skipped units before building anything), its
allowed options, an options validator (so spec validation can reject a bad
experiment with a path-prefixed message), and the builder itself.

A builder receives the unit's :class:`~repro.suite.context.SuiteContext`
and options and returns ``(figure, tables, artifact)``:

* ``figure`` — the rich in-process object (the legacy
  :class:`~repro.experiments.runner.ExperimentSuite` return types, or the
  suite's own :class:`SuiteSweep` for Figures 1–3),
* ``tables`` — named :class:`~repro.suite.results.SuiteTable`s for the
  CSV/JSONL sinks,
* ``artifact`` — a JSON dict rich enough to re-check every figure's
  paper-level claims without the Python objects.

Figures 1–3 deliberately do **not** reuse the legacy
``Session.canonical_sweep`` (which measures through the machine's shared
noise generator — order-dependent, not store-native); they are rebuilt from
the context's canonical baseline, which is bit-identical across backends,
services and store states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Mapping

import numpy as np

from repro.analysis.pearson import pearson_correlation
from repro.config import ExperimentScale
from repro.experiments.alphabeta import alphabeta_surface
from repro.experiments.canonical import CANONICAL_NAMES, SWEEP_METRICS
from repro.experiments.correlation_table import correlation_table
from repro.experiments.histograms import (
    LARGE_SIZE_METRICS,
    SMALL_SIZE_METRICS,
    histogram_figure,
)
from repro.experiments.pruning import pruning_figure
from repro.experiments.scatter_fig import scatter_figure
from repro.experiments.theory_table import theory_table
from repro.models.combined import CombinedModel
from repro.runtime.metrics import metric_spec
from repro.suite.context import REFERENCE_NAMES, SuiteContext
from repro.suite.results import SuiteTable, jsonable
from repro.suite.spec import ExperimentSpec, SpecError
from repro.wht.plan import Plan

__all__ = [
    "SuiteSweep",
    "experiment_kinds",
    "kind_baselines",
    "validate_options",
    "build_experiment",
]


# -- Figures 1-3: the canonical sweep, rebuilt store-natively --------------------


@dataclass(frozen=True)
class SuiteSweep:
    """Canonical + DP-best metric values across sizes (Figures 1–3).

    Duck-types the slice of :class:`~repro.experiments.canonical.CanonicalSweep`
    the ratio figures and renderers consume (``sizes``, :meth:`metric`,
    :meth:`ratios`, :meth:`log10_ratios`, :meth:`crossover_size`,
    ``best_plans``) but carries plain floats from the store-native canonical
    baseline instead of ``Measurement`` objects.
    """

    sizes: tuple[int, ...]
    #: ``values[name][metric][i]`` at ``sizes[i]``; names are the canonical
    #: names plus ``"best"``.
    values: dict[str, dict[str, tuple[float, ...]]]
    best_plans: dict[int, Plan]

    def metric(self, name: str, metric: str) -> list[float]:
        return list(self.values[name][metric])

    def ratios(self, metric: str) -> dict[str, list[float]]:
        best = self.metric("best", metric)
        return {
            name: [
                v / b if b > 0 else float("inf")
                for v, b in zip(self.metric(name, metric), best)
            ]
            for name in CANONICAL_NAMES
        }

    def log10_ratios(self, metric: str) -> dict[str, list[float]]:
        return {
            name: [math.log10(r) if r > 0 else float("-inf") for r in series]
            for name, series in self.ratios(metric).items()
        }

    def crossover_size(self, reference: str = "right") -> int | None:
        """First size from which ``reference`` permanently beats iterative."""
        iterative = self.metric("iterative", "cycles")
        other = self.metric(reference, "cycles")
        crossover: int | None = None
        for size, it_value, other_value in zip(self.sizes, iterative, other):
            if other_value < it_value:
                if crossover is None:
                    crossover = size
            else:
                crossover = None
        return crossover


def _suite_sweep(ctx: SuiteContext) -> SuiteSweep:
    sizes = ctx.sweep_sizes()
    values: dict[str, dict[str, list[float]]] = {
        name: {metric: [] for metric in SWEEP_METRICS} for name in REFERENCE_NAMES
    }
    for n in sizes:
        table = ctx.canonical_table(n)
        for index, name in enumerate(REFERENCE_NAMES):
            for metric in SWEEP_METRICS:
                values[name][metric].append(float(table.column(metric)[index]))
    return SuiteSweep(
        sizes=sizes,
        values={
            name: {metric: tuple(series) for metric, series in metrics.items()}
            for name, metrics in values.items()
        },
        best_plans={n: ctx.best_plan(n) for n in sizes},
    )


def _ratio_tables(sweep: SuiteSweep, metric: str, log10: bool = False) -> dict[str, SuiteTable]:
    series = sweep.log10_ratios(metric) if log10 else sweep.ratios(metric)
    headers = ["n"] + [f"{name}_over_best" for name in CANONICAL_NAMES]
    rows = [
        [n] + [series[name][i] for name in CANONICAL_NAMES]
        for i, n in enumerate(sweep.sizes)
    ]
    return {"ratios": SuiteTable.build(headers, rows)}


def _build_ratio_figure(ctx: SuiteContext, metric: str, log10: bool) -> tuple:
    sweep = _suite_sweep(ctx)
    config = ctx.machine.config
    artifact: dict[str, Any] = {
        "sizes": list(sweep.sizes),
        "metric": metric,
        "log10": log10,
        "ratios": sweep.log10_ratios(metric) if log10 else sweep.ratios(metric),
        "values": {name: sweep.values[name][metric] for name in REFERENCE_NAMES},
        "crossover": sweep.crossover_size("right"),
        "l1_boundary": config.l1_capacity_exponent(),
        "l2_boundary": config.l2_capacity_exponent(),
        "best_plans": {str(n): str(plan) for n, plan in sweep.best_plans.items()},
    }
    return sweep, _ratio_tables(sweep, metric, log10=log10), artifact


def _build_figure1(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    return _build_ratio_figure(ctx, "cycles", log10=False)


def _build_figure2(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    return _build_ratio_figure(ctx, "instructions", log10=False)


def _build_figure3(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    return _build_ratio_figure(ctx, "l1_misses", log10=True)


# -- Figures 4-5: histograms -----------------------------------------------------


def _summary_payload(summary) -> dict[str, Any]:
    payload = dict(summary.as_dict())
    payload["iqr"] = summary.iqr
    payload["coefficient_of_variation"] = summary.coefficient_of_variation
    return payload


def _build_histograms(ctx: SuiteContext, which: str, metrics: tuple[str, ...]) -> tuple:
    table = ctx.figure_table(which, metrics)
    figure = histogram_figure(table, metrics=metrics)
    artifact = {
        "n": figure.n,
        "which": which,
        "sample_count": figure.sample_count,
        "metrics": list(figure.metric_names()),
        "summaries": {m: _summary_payload(s) for m, s in figure.summaries.items()},
        "outliers_removed": dict(figure.outliers_removed),
        "histograms": {
            m: {"edges": h.edges, "counts": h.counts}
            for m, h in figure.histograms.items()
        },
    }
    summary_headers = [
        "metric", "count", "mean", "std", "min", "q1", "median", "q3", "max",
        "skewness", "excess_kurtosis", "iqr", "coefficient_of_variation",
        "outliers_removed",
    ]
    rows = []
    for metric in figure.metric_names():
        payload = _summary_payload(figure.summaries[metric])
        rows.append(
            [metric] + [payload[h] for h in summary_headers[1:-1]]
            + [figure.outliers_removed[metric]]
        )
    tables = {"summaries": SuiteTable.build(summary_headers, rows)}
    return figure, tables, jsonable(artifact)


def _build_figure4(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    metrics = tuple(options.get("metrics", SMALL_SIZE_METRICS))
    return _build_histograms(ctx, "small", metrics)


def _build_figure5(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    metrics = tuple(options.get("metrics", LARGE_SIZE_METRICS))
    return _build_histograms(ctx, "large", metrics)


# -- Figures 6-8: scatter plots --------------------------------------------------


def _build_scatter(
    ctx: SuiteContext, which: str, x_metric: str, y_metric: str = "cycles"
) -> tuple:
    n = ctx.scale.small_size if which == "small" else ctx.scale.large_size
    metrics = (x_metric, y_metric)
    table = ctx.figure_table(which, metrics)
    points = {
        name: (values[0], values[1])
        for name, values in ctx.reference_points(n, metrics).items()
    }
    data = scatter_figure(
        table, x_metric=x_metric, y_metric=y_metric, reference_points=points
    )
    artifact = {
        "n": n,
        "which": which,
        "x_metric": x_metric,
        "y_metric": y_metric,
        "count": data.count,
        "correlation": data.correlation,
        "references": {name: list(point) for name, point in data.references.items()},
        "outside_range": {
            name: data.reference_outside_range(name) for name in data.references
        },
        "y_p95": float(np.percentile(data.y, 95.0)),
    }
    tables = {
        "points": SuiteTable.build([x_metric, y_metric], list(zip(data.x, data.y))),
        "references": SuiteTable.build(
            ["name", x_metric, y_metric, "outside_range"],
            [
                [name, point[0], point[1], data.reference_outside_range(name)]
                for name, point in data.references.items()
            ],
        ),
    }
    return data, tables, jsonable(artifact)


def _build_figure6(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    return _build_scatter(ctx, "small", options.get("x_metric", "instructions"))


def _build_figure7(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    return _build_scatter(ctx, "large", options.get("x_metric", "instructions"))


def _build_figure8(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    return _build_scatter(ctx, "large", options.get("x_metric", "l1_misses"))


# -- Figure 9: the (alpha, beta) correlation surface -----------------------------


def _build_figure9(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    table = ctx.large_table()
    surface = alphabeta_surface(table, miss_column=options.get("miss_column", "l1_misses"))
    alpha, beta, rho = surface.best
    artifact = {
        "n": table.n,
        "alphas": surface.alphas,
        "betas": surface.betas,
        "rho": surface.rho,
        "best": {"alpha": alpha, "beta": beta, "rho": rho},
        "rho_instructions": pearson_correlation(table.instructions, table.cycles),
        "rho_misses": pearson_correlation(table.l1_misses, table.cycles),
    }
    tables = {
        "surface": SuiteTable.build(["alpha", "beta", "rho"], surface.as_rows()),
        "best": SuiteTable.build(["alpha", "beta", "rho"], [[alpha, beta, rho]]),
    }
    return surface, tables, jsonable(artifact)


# -- Figures 10-11: pruning curves -----------------------------------------------


def _pruning_payload(figure) -> tuple[dict[str, Any], dict[str, SuiteTable]]:
    artifact = {
        "n": figure.n,
        "model_label": figure.model_label,
        "safe_thresholds": {
            f"{p:g}": {"threshold": threshold, "discarded": discarded}
            for p, (threshold, discarded) in sorted(figure.safe_thresholds.items())
        },
        "curves": [
            {
                "percentile": curve.percentile,
                "limit": curve.limit,
                "final_cumulative": float(curve.cumulative[-1]),
            }
            for curve in figure.curves
        ],
    }
    rows = []
    for curve in figure.curves:
        for i in range(curve.thresholds.shape[0]):
            rows.append(
                [
                    curve.percentile,
                    float(curve.thresholds[i]),
                    float(curve.cumulative[i]),
                    float(curve.captured_top[i]),
                ]
            )
    tables = {
        "curves": SuiteTable.build(
            ["percentile", "threshold", "cumulative", "captured_top"], rows
        ),
        "safe_thresholds": SuiteTable.build(
            ["percentile", "threshold", "discarded"],
            [
                [p, threshold, discarded]
                for p, (threshold, discarded) in sorted(figure.safe_thresholds.items())
            ],
        ),
    }
    return artifact, tables


def _build_figure10(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    metric = options.get("model_metric", "instructions")
    table = ctx.figure_table("small", (metric,))
    figure = pruning_figure(table, model_values=table.column(metric), model_label=metric)
    artifact, tables = _pruning_payload(figure)
    artifact["model_metric"] = metric
    artifact["max_model_value"] = float(np.max(table.column(metric)))
    return figure, tables, jsonable(artifact)


def _build_figure11(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    metric = options.get("model_metric")
    table = ctx.large_table()
    if metric is not None:
        scored = ctx.figure_table("large", (metric,))
        figure = pruning_figure(
            scored, model_values=scored.column(metric), model_label=metric
        )
        artifact, tables = _pruning_payload(figure)
        artifact["model_metric"] = metric
    else:
        alpha, beta, _ = alphabeta_surface(table).best
        figure = pruning_figure(table, combined=CombinedModel(alpha=alpha, beta=beta))
        artifact, tables = _pruning_payload(figure)
        artifact["alpha"] = alpha
        artifact["beta"] = beta
    instruction_only = pruning_figure(table, model_label="instructions")
    artifact["instructions_baseline"] = {
        f"{p:g}": {"threshold": threshold, "discarded": discarded}
        for p, (threshold, discarded) in sorted(instruction_only.safe_thresholds.items())
    }
    return figure, tables, jsonable(artifact)


# -- summary tables --------------------------------------------------------------


def _build_correlations(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    table = correlation_table(ctx.small_table(), ctx.large_table())
    artifact = {
        "small_n": table.small_n,
        "large_n": table.large_n,
        "rho_small_instructions": table.rho_small_instructions,
        "rho_large_instructions": table.rho_large_instructions,
        "rho_large_misses": table.rho_large_misses,
        "rho_large_combined": table.rho_large_combined,
        "best_alpha": table.best_alpha,
        "best_beta": table.best_beta,
        "satisfies_paper_ordering": table.satisfies_paper_ordering(),
    }
    tables = {
        "correlations": SuiteTable.build(["quantity", "value"], table.as_rows()),
    }
    return table, tables, jsonable(artifact)


def _build_theory(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    top = options.get("max_size")
    if top is None:
        top = min(ctx.scale.large_size, 14)
    table = theory_table(range(1, int(top) + 1))
    artifact = {"max_size": int(top), "rows": [dict(row) for row in table.rows]}
    tables = {"theory": SuiteTable.build(table.headers, table.as_rows())}
    return table, tables, jsonable(artifact)


# -- searches --------------------------------------------------------------------


def _build_search(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    from repro.suite.sweep import parse_objective

    n = int(options["n"])
    strategy = options.get("strategy", "dp")
    objective = parse_objective(options.get("objective", "cycles"))
    result = ctx.session.search(n, strategy=strategy, objective=objective)
    artifact = {
        "n": result.n,
        "strategy": result.strategy,
        "objective": objective.describe(),
        "best_plan": str(result.best_plan),
        "best_cost": result.best_cost,
        "evaluated": result.evaluated,
        "considered": result.considered,
    }
    tables = {
        "result": SuiteTable.build(
            ["n", "strategy", "objective", "best_plan", "best_cost", "evaluated"],
            [[result.n, result.strategy, objective.describe(), str(result.best_plan),
              result.best_cost, result.evaluated]],
        )
    }
    return result, tables, jsonable(artifact)


# -- the registry ----------------------------------------------------------------


def _validate_metrics_option(options: Mapping[str, Any], path: str) -> None:
    metrics = options.get("metrics")
    if metrics is None:
        return
    if not isinstance(metrics, (list, tuple)) or not metrics:
        raise SpecError(f"{path}.options.metrics: must be a non-empty list of metric names")
    for metric in metrics:
        try:
            metric_spec(metric)
        except KeyError as exc:
            raise SpecError(f"{path}.options.metrics: {exc.args[0]}") from None


def _validate_metric_option(name: str):
    def check(options: Mapping[str, Any], path: str, scale: ExperimentScale) -> None:
        value = options.get(name)
        if value is None:
            return
        try:
            metric_spec(value)
        except KeyError as exc:
            raise SpecError(f"{path}.options.{name}: {exc.args[0]}") from None

    return check


def _validate_histogram(options: Mapping[str, Any], path: str, scale: ExperimentScale) -> None:
    _validate_metrics_option(options, path)


def _validate_theory(options: Mapping[str, Any], path: str, scale: ExperimentScale) -> None:
    top = options.get("max_size")
    if top is not None and (not isinstance(top, int) or top < 1):
        raise SpecError(f"{path}.options.max_size: must be a positive integer")


def _validate_search(options: Mapping[str, Any], path: str, scale: ExperimentScale) -> None:
    from repro.suite.sweep import parse_objective

    n = options.get("n")
    if not isinstance(n, int) or n < 1:
        raise SpecError(f"{path}.options.n: required and must be a positive integer")
    strategy = options.get("strategy", "dp")
    if strategy not in ("dp", "random", "exhaustive"):
        raise SpecError(
            f"{path}.options.strategy: unknown strategy {strategy!r}; "
            "available: dp, random, exhaustive"
        )
    try:
        parse_objective(options.get("objective", "cycles"))
    except SpecError as exc:
        raise SpecError(f"{path}.options.objective: {exc}") from None


def _validate_sweep(options: Mapping[str, Any], path: str, scale: ExperimentScale) -> None:
    from repro.suite.sweep import validate_sweep_options

    validate_sweep_options(options, path, scale)


@dataclass(frozen=True)
class KindDef:
    """One registered experiment kind."""

    baselines: tuple[str, ...]
    allowed_options: frozenset[str]
    builder: Callable[[SuiteContext, Mapping[str, Any]], tuple]
    validator: Callable[[Mapping[str, Any], str, ExperimentScale], None] | None = None


def _build_sweep_experiment(ctx: SuiteContext, options: Mapping[str, Any]) -> tuple:
    from repro.suite.sweep import build_objective_sweep

    return build_objective_sweep(ctx, options)


KIND_REGISTRY: dict[str, KindDef] = {
    "figure1": KindDef(("canonical",), frozenset(), _build_figure1),
    "figure2": KindDef(("canonical",), frozenset(), _build_figure2),
    "figure3": KindDef(("canonical",), frozenset(), _build_figure3),
    "figure4": KindDef(("small",), frozenset({"metrics"}), _build_figure4, _validate_histogram),
    "figure5": KindDef(("large",), frozenset({"metrics"}), _build_figure5, _validate_histogram),
    "figure6": KindDef(
        ("small", "canonical"), frozenset({"x_metric"}), _build_figure6,
        _validate_metric_option("x_metric"),
    ),
    "figure7": KindDef(
        ("large", "canonical"), frozenset({"x_metric"}), _build_figure7,
        _validate_metric_option("x_metric"),
    ),
    "figure8": KindDef(
        ("large", "canonical"), frozenset({"x_metric"}), _build_figure8,
        _validate_metric_option("x_metric"),
    ),
    "figure9": KindDef(("large",), frozenset({"miss_column"}), _build_figure9),
    "figure10": KindDef(
        ("small",), frozenset({"model_metric"}), _build_figure10,
        _validate_metric_option("model_metric"),
    ),
    "figure11": KindDef(
        ("large",), frozenset({"model_metric"}), _build_figure11,
        _validate_metric_option("model_metric"),
    ),
    "correlations": KindDef(("small", "large"), frozenset(), _build_correlations),
    "theory": KindDef((), frozenset({"max_size"}), _build_theory, _validate_theory),
    "search": KindDef(
        (), frozenset({"n", "strategy", "objective"}), _build_search, _validate_search
    ),
    "objective_sweep": KindDef(
        (),
        frozenset({"objectives", "sizes", "count"}),
        _build_sweep_experiment,
        _validate_sweep,
    ),
}


def experiment_kinds() -> tuple[str, ...]:
    """All registered experiment kind names."""
    return tuple(KIND_REGISTRY)


def kind_baselines(kind: str) -> tuple[str, ...]:
    """The shared baselines one kind depends on."""
    return KIND_REGISTRY[kind].baselines


def validate_options(
    experiment: ExperimentSpec, path: str, scale: ExperimentScale
) -> None:
    """Validate one experiment's options against its kind's definition."""
    definition = KIND_REGISTRY[experiment.kind]
    unknown = set(experiment.options) - set(definition.allowed_options)
    if unknown:
        allowed = sorted(definition.allowed_options) or "(none)"
        raise SpecError(
            f"{path}.options: unknown option(s) {sorted(unknown)} for kind "
            f"{experiment.kind!r}; allowed: {allowed}"
        )
    if definition.validator is not None:
        definition.validator(experiment.options, path, scale)


def build_experiment(ctx: SuiteContext, experiment: ExperimentSpec) -> tuple:
    """Run one experiment's builder; returns ``(figure, tables, artifact)``."""
    return KIND_REGISTRY[experiment.kind].builder(ctx, experiment.options)
