"""The ``repro.suite(...)`` façade.

One call configures a whole paper reproduction::

    import repro

    run = repro.suite("benchmarks/suites/paper.json",
                      store="./campaigns", artifacts="./artifacts")
    result = run.run()
    print(result.describe())

``spec`` may be a path to a JSON spec file, a plain dict, or a ready
:class:`~repro.suite.spec.SuiteSpec`.  The returned
:class:`~repro.suite.runner.SuiteRun` is configured but not yet executed —
call :meth:`~repro.suite.runner.SuiteRun.run` (optionally narrowing by
experiment/machine/seed).

Because the import also installs the :mod:`repro.suite` subpackage, the
name ``repro.suite`` is *callable and a package at once*: ``repro.suite(...)``
runs this function, ``from repro.suite.spec import SuiteSpec`` still
imports normally, and ``python -m repro.suite`` reaches the CLI (runpy
resolves modules through importlib, not attribute lookup).  The one edge
case: ``import repro.suite as x`` binds this function, not the module —
use ``from repro import suite as suite_pkg`` style imports if you need the
module object itself.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.runtime.backends import ExecutionBackend
from repro.runtime.store import CampaignStore
from repro.suite.runner import SuiteRun
from repro.suite.spec import SuiteSpec, load_spec, spec_from_dict

__all__ = ["suite"]


def suite(
    spec: "SuiteSpec | Mapping[str, Any] | str",
    *,
    store: "str | CampaignStore | None" = "memory",
    backend: "str | ExecutionBackend | None" = None,
    sinks: "Sequence | None" = None,
    artifacts: str | None = None,
    manifest: str | None = None,
    service=None,
    connect: "str | Sequence[str] | None" = None,
    service_fallback: bool = False,
    dp_max_children: int | None = 2,
    **transport_options: Any,
) -> SuiteRun:
    """Configure a declarative experiment suite (validated, not yet run).

    Parameters
    ----------
    spec:
        A JSON spec file path, a plain dict, or a :class:`SuiteSpec`.
        Validation happens here, with path-prefixed actionable errors.
    store:
        Campaign/record store shared by every experiment: ``"memory"``
        (shared in-process), a directory path (persistent
        :class:`~repro.runtime.store.DiskStore` — the resume substrate),
        ``"none"``, or a store instance.
    backend:
        Execution backend preset or instance; defaults to the fused
        batched backend.  Ignored for connected (``service=``) sessions.
    sinks / artifacts:
        ``artifacts`` names the output directory; by default it receives
        CSV + JSONL tables and figure-artifact JSON, plus the run
        manifest.  ``sinks`` overrides the sink list (preset names or
        :class:`~repro.suite.sinks.ResultSink` objects); without either,
        results only live on the returned
        :class:`~repro.suite.results.SuiteResult`.
    manifest:
        Explicit manifest path (defaults to ``<artifacts>/manifest.json``;
        in-memory when there is no artifacts directory).
    service / connect:
        Run every experiment through a shared
        :class:`~repro.runtime.service.CampaignService` (``service=``) or
        a remote ``tcp://``/``unix://`` server (``connect=``, with
        ``**transport_options`` forwarded to the transport).  A *list* of
        URLs makes every context a fleet tenant: its cost engine is a
        :class:`~repro.runtime.fleet.FleetClient` striping the search over
        the member ring and failing over when a member dies.  When the
        spec itself declares a top-level ``connect``, it is the default
        and an explicit ``connect=`` here overrides it.  Results are
        bit-identical to a plain private session either way.
    """
    if isinstance(spec, str):
        spec = load_spec(spec)
    else:
        spec = spec_from_dict(spec)
    if service is not None and connect is not None:
        raise ValueError("pass either service= or connect=, not both")
    if service is None and connect is None and spec.connect:
        connect = spec.connect if len(spec.connect) > 1 else spec.connect[0]
    if transport_options and connect is None:
        unexpected = ", ".join(sorted(transport_options))
        raise TypeError(
            f"transport options ({unexpected}) only apply with connect='tcp://...'"
        )
    return SuiteRun(
        spec,
        store=store,
        backend=backend,
        sinks=sinks,
        artifacts=artifacts,
        manifest=manifest,
        service=service,
        connect=connect,
        service_fallback=service_fallback,
        transport_options=transport_options,
        dp_max_children=dp_max_children,
    )
