"""Theoretical properties of the WHT algorithm space.

The paper leans on earlier theoretical work ([5], [8]) for three kinds of
statements, all reproduced here:

* the *size of the algorithm space* grows like ``O(7^n)``
  (:func:`algorithm_space_size`, :func:`space_growth_ratios`);
* the *extremes* of the instruction-count distribution — the minimum and
  maximum achievable counts, and which plans achieve them
  (:func:`extreme_instruction_counts`);
* the *moments* of the instruction-count distribution under the recursive
  split uniform (RSU) sampling distribution — mean and variance, computed
  exactly by recursion over the distribution (:func:`rsu_instruction_moments`);
  [5] proves the normalised distribution tends to a normal limit, which the
  empirical histograms of Figure 4 illustrate and the test suite checks
  qualitatively via skewness of large samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.machine.cpu import InstructionCostModel
from repro.models.instruction_count import instruction_count
from repro.util.compositions import compositions
from repro.util.validation import check_positive_int
from repro.wht.enumeration import count_plans, growth_ratios
from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split

__all__ = [
    "algorithm_space_size",
    "space_growth_ratios",
    "ExtremePlans",
    "extreme_instruction_counts",
    "rsu_instruction_moments",
    "RSUMoments",
]


def algorithm_space_size(n: int, max_leaf: int = MAX_UNROLLED) -> int:
    """Exact number of WHT plans of size ``2^n`` (the ``O(7^n)`` family)."""
    return count_plans(n, max_leaf=max_leaf)


def space_growth_ratios(n_max: int, max_leaf: int = MAX_UNROLLED) -> list[float]:
    """Successive growth ratios of the space size (approaching ~7)."""
    return growth_ratios(n_max, max_leaf=max_leaf)


@dataclass(frozen=True)
class ExtremePlans:
    """Minimum- and maximum-instruction-count plans for one size."""

    n: int
    min_plan: Plan
    min_count: int
    max_plan: Plan
    max_count: int

    @property
    def spread(self) -> float:
        """Max count divided by min count."""
        return self.max_count / self.min_count if self.min_count else float("inf")


def _optimize_instruction_count(
    n: int,
    cost_model: InstructionCostModel,
    max_leaf: int,
    maximize: bool,
) -> tuple[Plan, int]:
    """Exact DP over all compositions for the extreme instruction count.

    The instruction count of ``split[c_1, ..., c_t]`` decomposes as a constant
    (depending only on the composition) plus ``sum_i (N / N_i) * count(c_i)``,
    so a bottom-up DP over exponents is exact: the best (or worst) subtree for
    each exponent is independent of its context.
    """
    better = max if maximize else min
    best: dict[int, tuple[Plan, int]] = {}
    for m in range(1, n + 1):
        candidates: list[tuple[Plan, int]] = []
        if m <= max_leaf:
            leaf = Small(m)
            candidates.append((leaf, instruction_count(leaf, cost_model)))
        for comp in compositions(m, min_parts=2):
            children = tuple(best[part][0] for part in comp)
            plan = Split(children)
            candidates.append((plan, instruction_count(plan, cost_model)))
        best[m] = better(candidates, key=lambda item: item[1])
    return best[n]


@lru_cache(maxsize=256)
def extreme_instruction_counts(
    n: int,
    cost_model: InstructionCostModel | None = None,
    max_leaf: int = MAX_UNROLLED,
) -> ExtremePlans:
    """The minimum and maximum instruction counts over all plans of size ``2^n``.

    Exact for every ``n`` (dynamic programming over exponents); the enumeration
    cost grows like ``2^n`` compositions per exponent, which stays comfortable
    for the sizes studied here (``n <= 20``).  The minimum is achieved by
    large-codelet iterative-style plans and the maximum by deep recursions with
    small leaves, mirroring the analysis of [5].
    """
    check_positive_int(n, "n")
    model = cost_model if cost_model is not None else InstructionCostModel()
    min_plan, min_count = _optimize_instruction_count(n, model, max_leaf, maximize=False)
    max_plan, max_count = _optimize_instruction_count(n, model, max_leaf, maximize=True)
    return ExtremePlans(
        n=n,
        min_plan=min_plan,
        min_count=min_count,
        max_plan=max_plan,
        max_count=max_count,
    )


@dataclass(frozen=True)
class RSUMoments:
    """Mean and variance of the instruction count under RSU sampling."""

    n: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        """Standard deviation."""
        return self.variance ** 0.5

    @property
    def coefficient_of_variation(self) -> float:
        """Standard deviation relative to the mean."""
        return self.std / self.mean if self.mean else float("inf")


def rsu_instruction_moments(
    n: int,
    cost_model: InstructionCostModel | None = None,
    max_leaf: int = MAX_UNROLLED,
) -> RSUMoments:
    """Exact mean and variance of the instruction count under RSU sampling.

    The recursion mirrors the sampling process: for exponent ``m`` every
    admissible composition (including the one-part "stop" composition when a
    codelet exists) is equally likely, and conditional on a composition the
    sub-plans are drawn independently.  Writing the count of a split as
    ``c(comp) + sum_i a_i X_i`` with ``a_i = 2^{m - m_i}`` and ``X_i`` the
    independent child counts, the conditional mean and variance are
    ``c + sum_i a_i E[X_i]`` and ``sum_i a_i^2 Var[X_i]``; the unconditional
    moments follow from the law of total mean/variance over the uniform
    composition choice.
    """
    check_positive_int(n, "n")
    model = cost_model if cost_model is not None else InstructionCostModel()

    leaf_counts = {
        m: float(instruction_count(Small(m), model)) for m in range(1, min(max_leaf, n) + 1)
    }

    # Per exponent m we track the moments of two random variables:
    #   X_m — the standalone instruction count of an RSU-random plan of
    #         exponent m (what instruction_count() returns for a root plan);
    #   Z_m — the per-call contribution of that plan when it appears as a
    #         child: Z_m = X_m + recursive_call_cost * [the plan is a split],
    #         because the parent's breakdown charges the dispatch overhead for
    #         non-leaf children only (leaf children carry their own codelet
    #         call overhead inside X already).
    mean_x: dict[int, float] = {}
    second_x: dict[int, float] = {}
    mean_z: dict[int, float] = {}
    second_z: dict[int, float] = {}
    dispatch = float(model.recursive_call_cost)

    for m in range(1, n + 1):
        # (mean, variance, is_split) of X conditional on each equally likely option.
        options: list[tuple[float, float, bool]] = []
        if m <= max_leaf:
            value = leaf_counts[m]
            options.append((value, 0.0, False))
        for comp in compositions(m, min_parts=2):
            size = 1 << m
            constant = float(model.split_invocation_cost)
            remaining = size
            inner = 1
            cond_mean = 0.0
            cond_var = 0.0
            for part in reversed(comp):
                part_size = 1 << part
                remaining //= part_size
                calls = remaining * inner
                constant += (
                    model.outer_loop_cost
                    + model.stride_loop_cost * inner
                    + model.block_loop_cost * remaining
                    + model.inner_loop_cost * calls
                )
                z_mean = mean_z[part]
                z_var = second_z[part] - z_mean * z_mean
                cond_mean += calls * z_mean
                cond_var += float(calls) ** 2 * z_var
                inner *= part_size
            options.append((constant + cond_mean, cond_var, True))

        count = len(options)
        mean_x[m] = sum(mu for mu, _, _ in options) / count
        second_x[m] = sum(var + mu * mu for mu, var, _ in options) / count
        mean_z[m] = sum(mu + (dispatch if is_split else 0.0) for mu, _, is_split in options) / count
        second_z[m] = (
            sum(
                var + (mu + (dispatch if is_split else 0.0)) ** 2
                for mu, var, is_split in options
            )
            / count
        )

    variance = second_x[n] - mean_x[n] * mean_x[n]
    return RSUMoments(n=n, mean=mean_x[n], variance=max(variance, 0.0))
