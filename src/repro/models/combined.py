"""The combined performance model ``alpha * I + beta * M`` (Section 4, Figure 9).

For transforms that no longer fit in cache, neither the instruction count nor
the cache-miss count alone correlates strongly with cycle counts; the paper
therefore forms a linear combination of the two and chooses the coefficients
``(alpha, beta)`` that maximise the Pearson correlation with measured cycles
over a grid (0 to 1 in steps of 0.05 in the paper, where the optimum for size
2^18 was ``alpha = 1.00``, ``beta = 0.05`` with ``rho = 0.92``).

:class:`CombinedModel` evaluates the combination; :func:`optimize_combined_model`
performs the grid search and returns the full correlation surface so Figure 9
can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.pearson import pearson_correlation
from repro.machine.measurement import Measurement
from repro.wht.plan import Plan

__all__ = ["CombinedModel", "CorrelationSurface", "optimize_combined_model"]


@dataclass(frozen=True)
class CombinedModel:
    """The linear combination ``alpha * instructions + beta * misses``."""

    alpha: float = 1.0
    beta: float = 0.05

    def value(self, instructions: float, misses: float) -> float:
        """Model value for explicit instruction and miss counts."""
        return self.alpha * float(instructions) + self.beta * float(misses)

    def values(self, instructions: np.ndarray, misses: np.ndarray) -> np.ndarray:
        """Vectorised model values."""
        instructions = np.asarray(instructions, dtype=float)
        misses = np.asarray(misses, dtype=float)
        if instructions.shape != misses.shape:
            raise ValueError(
                f"instructions {instructions.shape} and misses {misses.shape} "
                "must have the same shape"
            )
        return self.alpha * instructions + self.beta * misses

    def value_for_measurement(self, measurement: Measurement) -> float:
        """Model value of a machine measurement (uses L1 misses, as the paper does)."""
        return self.value(measurement.instructions, measurement.l1_misses)

    def value_for_plan(self, plan: Plan, instruction_model, miss_model) -> float:
        """Model value computed purely from analytic models (no measurement)."""
        return self.value(instruction_model.count(plan), miss_model.misses(plan))

    def describe(self) -> str:
        """Human-readable form, e.g. ``1.00 x Instructions + 0.05 x Misses``."""
        return f"{self.alpha:.2f} x Instructions + {self.beta:.2f} x Misses"


@dataclass(frozen=True)
class CorrelationSurface:
    """The correlation coefficient over the (alpha, beta) grid (Figure 9)."""

    alphas: np.ndarray
    betas: np.ndarray
    #: ``rho[i, j]`` = correlation for ``alphas[i]``, ``betas[j]``.
    rho: np.ndarray

    def __post_init__(self) -> None:
        if self.rho.shape != (self.alphas.shape[0], self.betas.shape[0]):
            raise ValueError(
                f"rho shape {self.rho.shape} does not match grid "
                f"({self.alphas.shape[0]}, {self.betas.shape[0]})"
            )

    @property
    def best(self) -> tuple[float, float, float]:
        """``(alpha, beta, rho)`` of the grid maximum.

        Ties are broken toward the smallest ``beta`` then smallest ``alpha``,
        matching the paper's convention of reporting the simplest combination.
        """
        finite = np.where(np.isfinite(self.rho), self.rho, -np.inf)
        best_value = float(finite.max())
        candidates = np.argwhere(finite >= best_value - 1e-12)
        # candidates rows are (alpha_index, beta_index); prefer small beta, then
        # small alpha *index* order.
        best_i, best_j = min(candidates.tolist(), key=lambda ij: (ij[1], ij[0]))
        return float(self.alphas[best_i]), float(self.betas[best_j]), float(self.rho[best_i, best_j])

    def best_model(self) -> CombinedModel:
        """The :class:`CombinedModel` at the grid maximum."""
        alpha, beta, _ = self.best
        return CombinedModel(alpha=alpha, beta=beta)

    def as_rows(self) -> list[tuple[float, float, float]]:
        """Flat ``(alpha, beta, rho)`` rows (useful for reports and tests)."""
        rows: list[tuple[float, float, float]] = []
        for i, alpha in enumerate(self.alphas):
            for j, beta in enumerate(self.betas):
                rows.append((float(alpha), float(beta), float(self.rho[i, j])))
        return rows


def optimize_combined_model(
    instructions: Sequence[float] | np.ndarray,
    misses: Sequence[float] | np.ndarray,
    cycles: Sequence[float] | np.ndarray,
    alphas: Sequence[float] | np.ndarray | None = None,
    betas: Sequence[float] | np.ndarray | None = None,
) -> CorrelationSurface:
    """Grid-search ``(alpha, beta)`` maximising correlation with cycles.

    The default grid is the paper's: both coefficients from 0 to 1 in steps of
    0.05.  The degenerate corner ``alpha = beta = 0`` yields a constant model;
    its correlation is reported as ``nan`` and never wins the maximum.
    """
    instructions = np.asarray(instructions, dtype=float)
    misses = np.asarray(misses, dtype=float)
    cycles = np.asarray(cycles, dtype=float)
    if not (instructions.shape == misses.shape == cycles.shape):
        raise ValueError("instructions, misses and cycles must have identical shapes")
    if instructions.ndim != 1 or instructions.shape[0] < 2:
        raise ValueError("need at least two samples to compute a correlation")

    alphas_arr = (
        np.round(np.arange(0.0, 1.0 + 1e-9, 0.05), 6)
        if alphas is None
        else np.asarray(list(alphas), dtype=float)
    )
    betas_arr = (
        np.round(np.arange(0.0, 1.0 + 1e-9, 0.05), 6)
        if betas is None
        else np.asarray(list(betas), dtype=float)
    )

    rho = np.full((alphas_arr.shape[0], betas_arr.shape[0]), np.nan)
    for i, alpha in enumerate(alphas_arr):
        for j, beta in enumerate(betas_arr):
            combined = alpha * instructions + beta * misses
            if np.all(combined == combined[0]):
                continue  # constant model: correlation undefined
            rho[i, j] = pearson_correlation(combined, cycles)
    return CorrelationSurface(alphas=alphas_arr, betas=betas_arr, rho=rho)
