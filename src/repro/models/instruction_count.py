"""The instruction-count model (paper reference [5], Hitczenko–Johnson–Huang).

The model computes, from the split tree alone, exactly the event counts the
instrumented interpreter would observe — codelet calls, split invocations and
loop iterations — and weights them with an :class:`InstructionCostModel`.  The
recurrence mirrors the triple loop: a child of size ``N_i`` inside a node of
size ``N`` is invoked ``N / N_i`` times, so its standalone counts contribute
with that multiplicity, and the node itself adds its loop overhead events.

Because the analytic counts and the interpreter's measured counts are the same
quantity computed two ways, the test suite asserts exact agreement for every
plan; this is the reproduction's analogue of the paper's statement that the
models "can be computed from a high-level description of the algorithm".
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Sequence

import numpy as np

from repro.machine.cpu import InstructionBreakdown, InstructionCostModel
from repro.wht.codelets import codelet_costs
from repro.wht.encoding import EncodedPlans, encode_plans
from repro.wht.interpreter import ExecutionStats
from repro.wht.plan import MAX_UNROLLED, Plan, Small, Split

__all__ = ["analytic_stats", "instruction_count", "InstructionCountModel"]


@lru_cache(maxsize=1)
def _codelet_cost_tables() -> dict[str, np.ndarray]:
    """Per-exponent codelet operation counts as int64 lookup tables."""
    ks = range(1, MAX_UNROLLED + 1)
    costs = [codelet_costs(k) for k in ks]
    pad = [0]  # leaf exponents start at 1
    return {
        "additions": np.array(pad + [c.additions for c in costs], dtype=np.int64),
        "subtractions": np.array(pad + [c.subtractions for c in costs], dtype=np.int64),
        "loads": np.array(pad + [c.loads for c in costs], dtype=np.int64),
        "stores": np.array(pad + [c.stores for c in costs], dtype=np.int64),
    }


def analytic_stats(plan: Plan) -> ExecutionStats:
    """Event counts of executing ``plan`` once, derived without execution.

    The result is identical to ``PlanInterpreter().profile(plan)[0]`` for every
    valid plan (property-tested), but costs ``O(nodes)`` instead of
    ``O(actual loop iterations)``.  A fresh object is returned on every call so
    callers may freely mutate or merge it.
    """
    return _analytic_stats_cached(plan).scaled(1)


@lru_cache(maxsize=65536)
def _analytic_stats_cached(plan: Plan) -> ExecutionStats:
    if isinstance(plan, Small):
        costs = codelet_costs(plan.n)
        stats = ExecutionStats(n=plan.n, codelet_calls=Counter({plan.n: 1}))
        stats.additions = costs.additions
        stats.subtractions = costs.subtractions
        stats.loads = costs.loads
        stats.stores = costs.stores
        return stats
    if not isinstance(plan, Split):
        raise TypeError(f"not a plan node: {plan!r}")

    stats = ExecutionStats(n=plan.n)
    stats.split_invocations = 1
    remaining = plan.size
    inner = 1
    for child in reversed(plan.children):
        child_size = child.size
        remaining //= child_size
        calls = remaining * inner
        stats.outer_iterations += 1
        stats.stride_iterations += inner
        stats.block_iterations += remaining
        stats.child_calls += calls
        stats.merge(_analytic_stats_cached(child).scaled(calls))
        inner *= child_size
    return stats


def instruction_count(
    plan: Plan,
    cost_model: InstructionCostModel | None = None,
) -> int:
    """Total modelled instruction count of one execution of ``plan``."""
    model = cost_model if cost_model is not None else InstructionCostModel()
    return model.instructions(analytic_stats(plan))


class InstructionCountModel:
    """Callable wrapper around the analytic instruction-count model.

    Instances are cheap, deterministic cost functions suitable for the DP
    search, the model-pruned search and the correlation studies.
    """

    def __init__(self, cost_model: InstructionCostModel | None = None):
        self.cost_model = cost_model if cost_model is not None else InstructionCostModel()

    def stats(self, plan: Plan) -> ExecutionStats:
        """Analytic event counts for ``plan``."""
        return analytic_stats(plan)

    def breakdown(self, plan: Plan) -> InstructionBreakdown:
        """Instruction totals by category for ``plan``."""
        return self.cost_model.breakdown(analytic_stats(plan))

    def count(self, plan: Plan) -> int:
        """Total modelled instruction count for ``plan``."""
        return self.cost_model.instructions(analytic_stats(plan))

    def count_batch(
        self, plans: "Sequence[Plan] | EncodedPlans"
    ) -> np.ndarray:
        """Vectorised :meth:`count` over a batch of plans.

        Accepts either a plan sequence or a pre-built
        :class:`~repro.wht.encoding.EncodedPlans` (so one encoding can be
        shared between models).  Returns an int64 array that matches the
        scalar :meth:`count` exactly on every plan (property-tested): the
        recurrence is replaced by closed-form per-node contributions — a node
        of size ``2^k`` under a root of size ``2^n`` executes ``2^(n-k)``
        times — summed per plan with exact integer cumulative sums.
        """
        enc = plans if isinstance(plans, EncodedPlans) else encode_plans(plans)
        if enc.num_plans == 0:
            return np.zeros(0, dtype=np.int64)
        model = self.cost_model
        mult = enc.node_multiplicity()
        leaf = enc.node_is_leaf
        leaf_k = enc.node_exponent[leaf]
        leaf_mult = mult[leaf]
        tables = _codelet_cost_tables()

        # Per-node direct instructions: codelet bodies + per-call overhead on
        # leaves, invocation overhead on splits.
        node_direct = np.zeros(enc.num_nodes, dtype=np.int64)
        node_direct[leaf] = leaf_mult * (
            tables["additions"][leaf_k]
            + tables["subtractions"][leaf_k]
            + tables["loads"][leaf_k]
            + tables["stores"][leaf_k]
            + model.codelet_call_base
            + model.codelet_call_per_unit * leaf_k
        )
        node_direct[~leaf] = mult[~leaf] * model.split_invocation_cost

        # Per-node codelet-call counts (for the recursion-overhead correction).
        node_codelet_calls = np.zeros(enc.num_nodes, dtype=np.int64)
        node_codelet_calls[leaf] = leaf_mult

        # Per-slot loop events.  For child ``i`` of a split of size ``2^m``:
        # the stride loop runs ``S_i = 2^suffix`` times, the block loop
        # ``R_i = 2^(m - c_i - suffix)`` times and the child is called
        # ``R_i * S_i = 2^(m - c_i)`` times — all scaled by the owner's
        # multiplicity.
        owner_mult = mult[enc.slot_owner]
        owner_exp = enc.node_exponent[enc.slot_owner]
        child_exp = enc.node_exponent[enc.slot_child]
        suffix = enc.slot_suffix_exponent
        slot_stride_iters = owner_mult << suffix
        slot_block_iters = owner_mult << (owner_exp - child_exp - suffix)
        slot_child_calls = owner_mult << (owner_exp - child_exp)
        slot_loop = (
            owner_mult * model.outer_loop_cost
            + slot_stride_iters * model.stride_loop_cost
            + slot_block_iters * model.block_loop_cost
            + slot_child_calls * model.inner_loop_cost
        )

        totals = enc.segment_sum_nodes(node_direct) + enc.segment_sum_slots(slot_loop)
        child_calls = enc.segment_sum_slots(slot_child_calls)
        codelet_calls = enc.segment_sum_nodes(node_codelet_calls)
        recursive_calls = np.maximum(child_calls - codelet_calls, 0)
        totals += recursive_calls * model.recursive_call_cost
        return totals

    def __call__(self, plan: Plan) -> float:
        """Cost-function interface (e.g. for :class:`repro.wht.DPSearch`)."""
        return float(self.count(plan))

    def __repr__(self) -> str:
        return f"InstructionCountModel({self.cost_model!r})"
