"""The instruction-count model (paper reference [5], Hitczenko–Johnson–Huang).

The model computes, from the split tree alone, exactly the event counts the
instrumented interpreter would observe — codelet calls, split invocations and
loop iterations — and weights them with an :class:`InstructionCostModel`.  The
recurrence mirrors the triple loop: a child of size ``N_i`` inside a node of
size ``N`` is invoked ``N / N_i`` times, so its standalone counts contribute
with that multiplicity, and the node itself adds its loop overhead events.

Because the analytic counts and the interpreter's measured counts are the same
quantity computed two ways, the test suite asserts exact agreement for every
plan; this is the reproduction's analogue of the paper's statement that the
models "can be computed from a high-level description of the algorithm".
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache

from repro.machine.cpu import InstructionBreakdown, InstructionCostModel
from repro.wht.codelets import codelet_costs
from repro.wht.interpreter import ExecutionStats
from repro.wht.plan import Plan, Small, Split

__all__ = ["analytic_stats", "instruction_count", "InstructionCountModel"]


def analytic_stats(plan: Plan) -> ExecutionStats:
    """Event counts of executing ``plan`` once, derived without execution.

    The result is identical to ``PlanInterpreter().profile(plan)[0]`` for every
    valid plan (property-tested), but costs ``O(nodes)`` instead of
    ``O(actual loop iterations)``.  A fresh object is returned on every call so
    callers may freely mutate or merge it.
    """
    return _analytic_stats_cached(plan).scaled(1)


@lru_cache(maxsize=65536)
def _analytic_stats_cached(plan: Plan) -> ExecutionStats:
    if isinstance(plan, Small):
        costs = codelet_costs(plan.n)
        stats = ExecutionStats(n=plan.n, codelet_calls=Counter({plan.n: 1}))
        stats.additions = costs.additions
        stats.subtractions = costs.subtractions
        stats.loads = costs.loads
        stats.stores = costs.stores
        return stats
    if not isinstance(plan, Split):
        raise TypeError(f"not a plan node: {plan!r}")

    stats = ExecutionStats(n=plan.n)
    stats.split_invocations = 1
    remaining = plan.size
    inner = 1
    for child in reversed(plan.children):
        child_size = child.size
        remaining //= child_size
        calls = remaining * inner
        stats.outer_iterations += 1
        stats.stride_iterations += inner
        stats.block_iterations += remaining
        stats.child_calls += calls
        stats.merge(_analytic_stats_cached(child).scaled(calls))
        inner *= child_size
    return stats


def instruction_count(
    plan: Plan,
    cost_model: InstructionCostModel | None = None,
) -> int:
    """Total modelled instruction count of one execution of ``plan``."""
    model = cost_model if cost_model is not None else InstructionCostModel()
    return model.instructions(analytic_stats(plan))


class InstructionCountModel:
    """Callable wrapper around the analytic instruction-count model.

    Instances are cheap, deterministic cost functions suitable for the DP
    search, the model-pruned search and the correlation studies.
    """

    def __init__(self, cost_model: InstructionCostModel | None = None):
        self.cost_model = cost_model if cost_model is not None else InstructionCostModel()

    def stats(self, plan: Plan) -> ExecutionStats:
        """Analytic event counts for ``plan``."""
        return analytic_stats(plan)

    def breakdown(self, plan: Plan) -> InstructionBreakdown:
        """Instruction totals by category for ``plan``."""
        return self.cost_model.breakdown(analytic_stats(plan))

    def count(self, plan: Plan) -> int:
        """Total modelled instruction count for ``plan``."""
        return self.cost_model.instructions(analytic_stats(plan))

    def __call__(self, plan: Plan) -> float:
        """Cost-function interface (e.g. for :class:`repro.wht.DPSearch`)."""
        return float(self.count(plan))

    def __repr__(self) -> str:
        return f"InstructionCountModel({self.cost_model!r})"
