"""Analytic performance models (the paper's core contribution).

The models in this subpackage are computed *from the high-level plan
description alone* — no execution, no simulation — exactly as emphasised by
the paper: because the models are cheap and analyzable, they can prune the
search space before any measurement happens.

* :mod:`repro.models.instruction_count` — the instruction-count model of
  Hitczenko–Johnson–Huang ([5] in the paper).
* :mod:`repro.models.cache_misses` — the direct-mapped cache-miss model of
  Furis–Hitczenko–Johnson ([8] in the paper).
* :mod:`repro.models.combined` — the linear combination ``alpha*I + beta*M``
  whose coefficients are chosen to maximise correlation with measured cycles
  (Section 4 / Figure 9).
* :mod:`repro.models.theory` — theoretical properties of the algorithm space:
  plan counts (~``O(7^n)``), extreme instruction counts, and the mean/variance
  of the instruction-count distribution under the RSU sampling distribution.
"""

from repro.models.instruction_count import (
    InstructionCountModel,
    analytic_stats,
    instruction_count,
)
from repro.models.cache_misses import CacheMissModel, cache_miss_count
from repro.models.combined import (
    CombinedModel,
    CorrelationSurface,
    optimize_combined_model,
)
from repro.models.theory import (
    algorithm_space_size,
    extreme_instruction_counts,
    rsu_instruction_moments,
)

__all__ = [
    "InstructionCountModel",
    "analytic_stats",
    "instruction_count",
    "CacheMissModel",
    "cache_miss_count",
    "CombinedModel",
    "CorrelationSurface",
    "optimize_combined_model",
    "algorithm_space_size",
    "extreme_instruction_counts",
    "rsu_instruction_moments",
]
