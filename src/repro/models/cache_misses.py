"""The analytic cache-miss model (paper reference [8], Furis–Hitczenko–Johnson).

The model estimates the number of data-cache misses of a plan from its split
tree alone, under the assumptions of [8]: a single-level cache of ``C``
elements with lines of ``l`` elements, considered direct mapped, and a cold
start.  The estimate follows the structure of the triple-loop execution:

* the footprint of ``M`` elements at element stride ``s`` occupies ``M`` lines
  when ``s >= l`` (each element on its own line) and ``ceil(M*s/l)`` lines
  otherwise;
* a subtree whose strided footprint fits in the cache incurs only its cold
  misses — every later pass over the same data inside that subtree hits;
* inside a subtree that does **not** fit, each child contributes one *pass*
  over the subtree's data per invocation of the triple loop.  When the child's
  own per-call working set fits in the cache, the pass misses once per line of
  the enclosing subtree's footprint (calls that share a cache line are
  adjacent iterations of the stride loop, so the shared line is still
  resident); when the child's per-call working set does not fit, the child is
  analysed recursively and charged once per call (no reuse survives between
  calls).

Like the paper's model, this is deliberately *not* an exact simulation — it
ignores conflict misses and the partial reuse that a set-associative cache
recovers — but it is monotone in the effects that matter (strided recursion
thrashes, contiguous recursion localises, every extra pass over an
out-of-cache data set costs a sweep of misses) and is computable in
``O(nodes)`` time, which is what makes model-based pruning of the algorithm
space possible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.machine.cache import CacheConfig
from repro.machine.machine import MachineConfig
from repro.util.validation import check_positive_int
from repro.wht.encoding import EncodedPlans, encode_plans
from repro.wht.plan import Plan, Small, Split

__all__ = ["CacheMissModel", "cache_miss_count"]


class CacheMissModel:
    """Analytic direct-mapped cache-miss model.

    Parameters
    ----------
    capacity_elements:
        Cache capacity in vector elements (e.g. a 64 KB cache holding doubles
        has capacity 8192).
    line_elements:
        Cache line length in vector elements (e.g. 64-byte lines hold 8
        doubles).
    associativity:
        Set associativity used for the *effective capacity* of strided access
        patterns.  The published analysis ([8]) is for a direct-mapped cache
        (associativity 1, the default); passing the simulated machine's real
        associativity makes the model track the simulator more closely.  A
        power-of-two stride only reaches every ``stride/line``-th set, so the
        capacity available to a strided working set shrinks proportionally —
        this self-interference term is what makes strided recursion thrash.
    """

    def __init__(
        self,
        capacity_elements: int,
        line_elements: int = 8,
        associativity: int = 1,
    ):
        check_positive_int(capacity_elements, "capacity_elements")
        check_positive_int(line_elements, "line_elements")
        check_positive_int(associativity, "associativity")
        if line_elements > capacity_elements:
            raise ValueError("line_elements cannot exceed capacity_elements")
        self.capacity_elements = int(capacity_elements)
        self.line_elements = int(line_elements)
        self.associativity = int(associativity)
        if self.associativity > self.capacity_lines:
            raise ValueError("associativity cannot exceed the number of lines")
        self._cache: dict[tuple[Plan, int], int] = {}

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_cache_config(cls, config: CacheConfig, element_size: int = 8) -> "CacheMissModel":
        """Build the model for a given cache geometry (keeps its associativity)."""
        return cls(
            capacity_elements=config.size_bytes // element_size,
            line_elements=max(config.line_size // element_size, 1),
            associativity=config.associativity,
        )

    @classmethod
    def from_machine_config(cls, config: MachineConfig, level: str = "l1") -> "CacheMissModel":
        """Build the model for the L1 (default) or L2 level of a machine."""
        if level.lower() == "l1":
            cache = config.l1
        elif level.lower() == "l2":
            if config.l2 is None:
                raise ValueError("machine configuration has no L2 cache")
            cache = config.l2
        else:
            raise ValueError(f"level must be 'l1' or 'l2', got {level!r}")
        return cls.from_cache_config(cache, element_size=config.element_size)

    # -- the model ---------------------------------------------------------------

    @property
    def capacity_lines(self) -> int:
        """Number of lines the cache holds."""
        return self.capacity_elements // self.line_elements

    @property
    def num_sets(self) -> int:
        """Number of sets (lines / associativity)."""
        return max(self.capacity_lines // self.associativity, 1)

    def footprint_lines(self, elements: int, stride: int) -> int:
        """Distinct cache lines touched by ``elements`` elements at ``stride``."""
        check_positive_int(elements, "elements")
        check_positive_int(stride, "stride")
        if stride >= self.line_elements:
            return elements
        span = elements * stride
        return -(-span // self.line_elements)  # ceil division

    def effective_capacity_lines(self, stride: int) -> int:
        """Lines simultaneously available to a stride-``stride`` working set.

        Accesses spaced ``stride`` elements apart only reach every
        ``stride / line``-th set (for the power-of-two strides of WHT plans),
        so the usable capacity shrinks by that factor — the self-interference
        effect at the core of the direct-mapped analysis of [8].
        """
        check_positive_int(stride, "stride")
        stride_in_lines = max(stride // self.line_elements, 1)
        from math import gcd

        reachable_sets = self.num_sets // gcd(stride_in_lines, self.num_sets)
        return max(reachable_sets * self.associativity, self.associativity)

    def fits(self, elements: int, stride: int) -> bool:
        """Whether the strided footprint fits in the cache capacity it can reach."""
        return self.footprint_lines(elements, stride) <= self.effective_capacity_lines(stride)

    def misses(self, plan: Plan, stride: int = 1) -> int:
        """Modelled cache misses of one cold execution of ``plan`` at ``stride``."""
        check_positive_int(stride, "stride")
        key = (plan, stride)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self._misses(plan, stride)
        self._cache[key] = value
        return value

    def _misses(self, plan: Plan, stride: int) -> int:
        size = plan.size
        footprint = self.footprint_lines(size, stride)
        if footprint <= self.effective_capacity_lines(stride):
            # The whole subtree's data fits in the capacity its stride can
            # reach: cold misses only, regardless of how many passes the
            # subtree makes over it.
            return footprint
        if isinstance(plan, Small):
            # An unrolled codelet larger than the reachable capacity: the read
            # pass misses every line, the write pass reuses nothing.
            return footprint
        assert isinstance(plan, Split)
        total = 0
        remaining = size
        inner = 1
        for child in reversed(plan.children):
            child_size = child.size
            remaining //= child_size
            calls = remaining * inner
            child_stride = stride * inner
            child_footprint = self.footprint_lines(child_size, child_stride)
            if child_footprint <= self.effective_capacity_lines(child_stride):
                # One pass of this child over the whole (non-fitting) segment:
                # every line of the segment is brought in once; calls sharing a
                # line are adjacent stride-loop iterations, so the line is
                # still resident when they run.
                total += footprint
            else:
                # The child itself overflows the cache per call: no reuse
                # survives between its calls, so each call pays in full.
                total += calls * self.misses(child, child_stride)
            inner *= child_size
        return total

    def misses_batch(
        self, plans: "Sequence[Plan] | EncodedPlans", stride: int = 1
    ) -> np.ndarray:
        """Vectorised :meth:`misses` over a batch of plans (exact parity).

        Accepts a plan sequence or a shared
        :class:`~repro.wht.encoding.EncodedPlans`.  The scalar recursion
        visits every node at exactly one stride — the root stride times the
        product of the ``S`` factors along its ancestor path — so the batch
        path materialises that stride per node with one top-down sweep per
        tree level, classifies every node's footprint against the capacity
        its stride can reach, and then resolves the recursion bottom-up one
        level at a time: a non-fitting split charges, per child, either one
        pass over its own footprint (child fits) or the child's full value
        once per call (child overflows).  All arithmetic is int64 and matches
        the scalar model bit-for-bit (property-tested).
        """
        check_positive_int(stride, "stride")
        enc = plans if isinstance(plans, EncodedPlans) else encode_plans(plans)
        if enc.num_plans == 0:
            return np.zeros(0, dtype=np.int64)
        line = self.line_elements
        num_sets = self.num_sets
        assoc = self.associativity

        # The encoder bounds plan exponents, but the caller's root stride
        # multiplies every per-node stride.  Footprints and miss values stay
        # below ~2^(n + log2 nodes) regardless of the stride, so the only
        # quantity that grows with it is the footprint span
        # ``elements * node_stride <= stride * 2^n`` — guard that so the
        # int64 arithmetic can never silently wrap (the scalar model computes
        # in arbitrary-precision Python ints and stays exact at any stride).
        max_root = int(enc.root_exponent.max())
        if int(stride).bit_length() - 1 + max_root > 62:
            raise ValueError(
                f"stride {stride} with root exponent {max_root} exceeds the "
                f"batch path's exact-int64 range; use the scalar misses()"
            )

        # -- per-node strides (top-down, one vectorised step per level) ------
        stride_exp = np.zeros(enc.num_nodes, dtype=np.int64)
        owner_depth = enc.node_depth[enc.slot_owner]
        for depth in range(int(enc.node_depth.max()) + 1 if enc.num_slots else 0):
            mask = owner_depth == depth
            if not mask.any():
                continue
            stride_exp[enc.slot_child[mask]] = (
                stride_exp[enc.slot_owner[mask]] + enc.slot_suffix_exponent[mask]
            )
        node_stride = np.int64(stride) << stride_exp

        # -- footprints and reachable capacity (mirrors the scalar methods) --
        elements = np.int64(1) << enc.node_exponent
        span = elements * node_stride
        footprint = np.where(node_stride >= line, elements, -(-span // line))
        stride_in_lines = np.maximum(node_stride // line, 1)
        reachable_sets = num_sets // np.gcd(stride_in_lines, num_sets)
        effective = np.maximum(reachable_sets * assoc, assoc)
        fits = footprint <= effective

        # -- bottom-up resolution, deepest level first -----------------------
        leaf = enc.node_is_leaf
        value = np.where(fits | leaf, footprint, 0).astype(np.int64)
        needs = ~fits & ~leaf
        if needs.any():
            owner_exp = enc.node_exponent[enc.slot_owner]
            child_exp = enc.node_exponent[enc.slot_child]
            slot_calls = np.int64(1) << (owner_exp - child_exp)
            active = needs[enc.slot_owner]
            for depth in range(int(owner_depth.max()), -1, -1):
                mask = active & (owner_depth == depth)
                if not mask.any():
                    continue
                children = enc.slot_child[mask]
                owners = enc.slot_owner[mask]
                contribution = np.where(
                    fits[children],
                    footprint[owners],
                    slot_calls[mask] * value[children],
                )
                np.add.at(value, owners, contribution)
        return value[enc.root_index]

    def __call__(self, plan: Plan) -> float:
        """Cost-function interface (misses at unit stride)."""
        return float(self.misses(plan))

    def __repr__(self) -> str:
        return (
            f"CacheMissModel(capacity_elements={self.capacity_elements}, "
            f"line_elements={self.line_elements})"
        )


def cache_miss_count(
    plan: Plan,
    capacity_elements: int,
    line_elements: int = 8,
) -> int:
    """Convenience wrapper: modelled misses of ``plan`` on a cold cache."""
    return CacheMissModel(capacity_elements, line_elements).misses(plan)
