"""Sharded record log: one append-log writer per ``(machine_hash, seed)`` shard.

A multi-tenant campaign service measures for many machines and many seeds at
once; a single flat record log would make every one of its appends contend on
one file.  :class:`ShardedRecordStore` keeps the append-log format (and all of
:class:`~repro.runtime.store.DiskStore`'s crash-tolerant log machinery —
O(batch) locked appends, truncated-tail-tolerant reads, read-equivalent
compaction) but gives every :class:`~repro.runtime.store.CostLogKey` its own
shard directory under ``<root>/shards/``:

* **one writer per shard** — appends and compactions of a shard serialise on
  that shard's advisory file lock only; writers of different shards never
  contend;
* **concurrent lock-free readers** — reads never take a lock (the append-log
  format tolerates concurrent appends mid-read), so thousands of sessions can
  serve plan-cost lookups read-through from one store while the service's
  workers append;
* **background compaction** — when a shard's log accumulates more than
  ``auto_compact`` times as many record lines as distinct plans, a compaction
  is scheduled on a dedicated daemon thread instead of stalling the appending
  worker (``DiskStore``'s writer lock makes the concurrent compact-vs-append
  interleaving safe);
* **transparent migration** — a root directory previously written by a flat
  single-log :class:`DiskStore` (``costlog-*.jsonl`` at the top level, or
  pre-append-log ``costs-*.json`` tables) is folded into the matching shard
  the first time that shard is touched, after which the flat files are
  retired; an old store opens as a sharded one with zero re-measurements.

Campaign *tables* (whole-campaign JSON files) are not sharded — they are
written atomically and read rarely — and live at the root exactly as a flat
``DiskStore`` keeps them, so the root stays a drop-in
:class:`~repro.runtime.store.CampaignStore`.
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

from repro.runtime.store import (
    CampaignKey,
    CostLogKey,
    CostRecords,
    DiskStore,
    _CostTableCompat,
)
from repro.runtime.table import MeasurementTable

__all__ = ["ShardStats", "ShardedRecordStore"]


@dataclass(frozen=True)
class ShardStats:
    """Size and occupancy of one on-disk record shard."""

    #: The shard's log key, recovered from the log header.
    machine_hash: str
    seed: int
    #: Shard directory, relative to the store root.
    path: str
    #: Bytes currently occupied by the shard's log file.
    size_bytes: int
    #: Record lines in the log (>= distinct plans until compaction).
    record_lines: int
    #: Distinct plans with at least one record in the shard.
    distinct_plans: int


class ShardedRecordStore(_CostTableCompat):
    """A :class:`CampaignStore` whose record logs are sharded per log key.

    Parameters
    ----------
    path:
        Root directory.  Campaign tables live at the root; record shards
        live under ``<root>/shards/<hash12>-s<seed>/``.
    auto_compact:
        Line-to-plan ratio beyond which a shard's compaction is scheduled
        (``None`` disables automatic compaction).  Unlike
        ``DiskStore(auto_compact=...)`` the compaction runs on a background
        thread, so the appender returns as soon as its own records are
        durable.
    background_compaction:
        ``False`` runs triggered compactions inline (deterministic ordering
        for tests); the default schedules them on the compactor thread.
    """

    def __init__(
        self,
        path: "str | Path",
        auto_compact: float | None = 8.0,
        background_compaction: bool = True,
    ):
        if auto_compact is not None and auto_compact < 1.0:
            raise ValueError(
                f"auto_compact must be at least 1 (a line-to-plan ratio), "
                f"got {auto_compact}"
            )
        self.path = Path(path)
        self.shards_path = self.path / "shards"
        self.shards_path.mkdir(parents=True, exist_ok=True)
        self.auto_compact = auto_compact
        self.background_compaction = background_compaction
        #: Flat store at the root: campaign tables, plus the migration
        #: source for pre-sharding record logs.
        self._root = DiskStore(self.path)
        self._lock = threading.Lock()
        self._shards: dict[CostLogKey, DiskStore] = {}
        #: Per-shard compaction trigger: (record lines, distinct plan keys).
        self._counters: dict[CostLogKey, tuple[int, set[str]]] = {}
        #: Shards with a compaction scheduled but not yet finished.
        self._compacting: set[CostLogKey] = set()
        self._compaction_queue: "queue.Queue[CostLogKey | None]" = queue.Queue()
        self._compactor: threading.Thread | None = None
        self._closed = False

    # -- shard resolution --------------------------------------------------------

    def _shard_dir(self, key: CostLogKey) -> Path:
        # Readable over exhaustive: a 48-bit hash prefix plus the seed.  Two
        # *distinct* keys colliding here is harmless anyway — the log file
        # inside the directory is named by the key's own digest token.
        return self.shards_path / f"{key.machine_hash[:12]}-s{key.seed}"

    def _shard(self, key: CostLogKey) -> DiskStore:
        shard = self._shards.get(key)
        if shard is not None:
            return shard
        with self._lock:
            shard = self._shards.get(key)
            if shard is None:
                shard = DiskStore(self._shard_dir(key))
                self._migrate_flat_log(key, shard)
                self._shards[key] = shard
            return shard

    def _migrate_flat_log(self, key: CostLogKey, shard: DiskStore) -> None:
        """Fold a pre-sharding flat log (and legacy tables) into ``shard``.

        Runs once, on the shard's first touch, under the *root* log's writer
        lock so a straggling flat-store writer cannot append between the read
        and the retirement.  Re-running after a crash mid-migration is safe:
        record merges are idempotent.
        """
        with self._root._log_write_lock(key):
            records: CostRecords = {}
            legacy_files = self._root._migrate_legacy_tables(key, records)
            flat_log = self._root._log_for(key)
            self._root._merge_log_entries(records, flat_log)
            if not records:
                return
            shard.append_cost_records(key, records)
            for file in [flat_log, *legacy_files]:
                try:
                    file.unlink()
                except OSError:
                    pass

    def shard_log_path(self, key: CostLogKey) -> Path:
        """The on-disk append-log file inside ``key``'s shard.

        Resolving the path touches the shard (directory creation plus the
        one-time flat-log migration), so the returned location is exactly
        where the next append will land.  Public for fault injectors and
        crash-tolerance tests.
        """
        shard = self._shard(key)
        return shard.log_path(key)

    # -- campaign tables (unsharded, at the root) --------------------------------

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return self._root.get(key)

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        self._root.put(key, table)

    # -- record log --------------------------------------------------------------

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        return self._shard(key).get_cost_records(key)

    def append_cost_records(
        self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]
    ) -> None:
        if not records:
            return
        shard = self._shard(key)
        shard.append_cost_records(key, records)
        if self.auto_compact is None:
            return
        with self._lock:
            state = self._counters.get(key)
            if state is None:
                # Seed the trigger from the log as it stands (one read,
                # already including the append above); O(batch) afterwards.
                lines, plans = 0, set()
                for entry in shard._read_log(shard._log_for(key)):
                    plan = entry.get("p")
                    if isinstance(plan, str):
                        lines += 1
                        plans.add(plan)
            else:
                lines, plans = state
                lines += len(records)
                plans.update(str(plan) for plan in records)
            self._counters[key] = (lines, plans)
            due = (
                lines > self.auto_compact * max(len(plans), 1)
                and key not in self._compacting
                and not self._closed
            )
            if due:
                self._compacting.add(key)
        if due:
            self._submit_compaction(key)

    def compact_cost_records(self, key: CostLogKey) -> None:
        """Synchronously compact ``key``'s shard (one merged line per plan)."""
        self._shard(key).compact_cost_records(key)
        with self._lock:
            state = self._counters.get(key)
            if state is not None:
                self._counters[key] = (len(state[1]), state[1])

    # -- background compaction ---------------------------------------------------

    def _submit_compaction(self, key: CostLogKey) -> None:
        if not self.background_compaction:
            self._run_compaction(key)
            return
        with self._lock:
            if self._compactor is None or not self._compactor.is_alive():
                self._compactor = threading.Thread(
                    target=self._compaction_loop,
                    name="shard-compactor",
                    daemon=True,
                )
                self._compactor.start()
        self._compaction_queue.put(key)

    def _compaction_loop(self) -> None:
        while True:
            key = self._compaction_queue.get()
            try:
                if key is None:
                    return
                self._run_compaction(key)
            except Exception:  # pragma: no cover - compaction is best-effort
                pass  # an uncompacted log is merely larger, never wrong
            finally:
                self._compaction_queue.task_done()

    def _run_compaction(self, key: CostLogKey) -> None:
        try:
            self._shard(key).compact_cost_records(key)
        finally:
            with self._lock:
                self._compacting.discard(key)
                state = self._counters.get(key)
                if state is not None:
                    # The log now holds ~one line per plan; appends racing the
                    # compaction at worst re-trigger a little early or late.
                    self._counters[key] = (len(state[1]), state[1])

    def drain_compactions(self) -> None:
        """Block until every scheduled background compaction has finished."""
        self._compaction_queue.join()

    def close(self) -> None:
        """Finish scheduled compactions and stop the compactor (idempotent).

        The store remains readable and writable afterwards; only *automatic*
        compaction scheduling stops.
        """
        with self._lock:
            self._closed = True
            compactor = self._compactor
            self._compactor = None
        if compactor is not None and compactor.is_alive():
            self._compaction_queue.put(None)
            compactor.join()

    def __enter__(self) -> "ShardedRecordStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- maintenance and introspection -------------------------------------------

    def clear(self) -> None:
        """Drop every stored table, shard and counter."""
        self.close()
        with self._lock:
            self._shards.clear()
            self._counters.clear()
            self._compacting.clear()
            self._closed = False
        self._root.clear()
        for shard_dir in list(self.shards_path.iterdir()):
            if not shard_dir.is_dir():
                continue
            for file in list(shard_dir.iterdir()):
                try:
                    file.unlink()
                except OSError:
                    pass
            try:
                shard_dir.rmdir()
            except OSError:
                pass

    def shard_paths(self) -> Iterator[Path]:
        """Paths of every on-disk shard log (for inspection and tests)."""
        return iter(sorted(self.shards_path.glob("*/costlog-*.jsonl")))

    def shard_stats(self) -> list[ShardStats]:
        """Per-shard occupancy, read straight off the on-disk logs."""
        stats = []
        for log in self.shard_paths():
            machine_hash, seed = "", 0
            lines, plans = 0, set()
            try:
                size = log.stat().st_size
                with open(log, "r", encoding="utf-8") as handle:
                    for raw in handle:
                        raw = raw.strip()
                        if not raw:
                            continue
                        try:
                            entry = json.loads(raw)
                        except json.JSONDecodeError:
                            continue
                        if not isinstance(entry, dict):
                            continue
                        if "version" in entry:
                            header_key = entry.get("key", {})
                            machine_hash = str(header_key.get("machine_hash", ""))
                            seed = int(header_key.get("seed", 0))
                            continue
                        plan = entry.get("p")
                        if isinstance(plan, str):
                            lines += 1
                            plans.add(plan)
            except OSError:
                continue
            stats.append(
                ShardStats(
                    machine_hash=machine_hash,
                    seed=seed,
                    path=str(log.parent.relative_to(self.path)),
                    size_bytes=size,
                    record_lines=lines,
                    distinct_plans=len(plans),
                )
            )
        return stats

    def __repr__(self) -> str:
        return (
            f"ShardedRecordStore({str(self.path)!r}, "
            f"{len(list(self.shard_paths()))} shards)"
        )
