"""Campaign execution on top of backends and stores.

This module is the runtime's analogue of the paper's measurement campaigns:
draw plans from the RSU distribution, derive one noise seed per sample, and
hand the resulting work units to an execution backend.  Plan sampling stays in
the driver (it is a sequential draw from one generator), so every backend
measures the exact same plans with the exact same seeds; that is what makes
serial, multiprocess and batched execution bit-identical.

The seed derivation scheme is unchanged from the original serial loop:
``derive_seed(seed, "plans", n, count)`` seeds the plan sampler and
``derive_seed(seed, "noise", n, index)`` seeds sample ``index``'s cycle-noise
draw, so tables produced through this module match the historical ones.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.machine.machine import SimulatedMachine
from repro.runtime.backends import BatchedBackend, ExecutionBackend, WorkUnit
from repro.runtime.store import CampaignKey, CampaignStore, NullStore, machine_config_hash
from repro.runtime.table import MeasurementTable
from repro.util.rng import as_generator, derive_seed
from repro.util.validation import check_positive_int
from repro.wht.plan import MAX_UNROLLED, Plan
from repro.wht.random_plans import RSUSampler

__all__ = ["campaign_key", "sample_units", "run_campaign", "measure_plan_list"]


def campaign_key(
    machine: SimulatedMachine,
    n: int,
    count: int,
    seed: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
) -> CampaignKey:
    """The content-addressed store key of one RSU campaign."""
    return CampaignKey(
        machine_hash=machine_config_hash(machine.config),
        n=n,
        count=count,
        seed=seed,
        max_leaf=max_leaf,
        max_children=max_children,
    )


def sample_units(
    n: int,
    count: int,
    seed: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
) -> list[WorkUnit]:
    """Draw ``count`` RSU plans of size ``2^n`` with per-sample noise seeds."""
    check_positive_int(n, "n")
    check_positive_int(count, "count")
    plan_rng = as_generator(derive_seed(seed, "plans", n, count))
    sampler = RSUSampler(max_leaf=max_leaf, max_children=max_children)
    return [
        WorkUnit(
            plan=sampler.sample(n, plan_rng),
            noise_seed=derive_seed(seed, "noise", n, index),
        )
        for index in range(count)
    ]


def run_campaign(
    machine: SimulatedMachine,
    n: int,
    count: int,
    *,
    seed: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
    backend: ExecutionBackend | None = None,
    store: CampaignStore | None = None,
) -> MeasurementTable:
    """Measure an RSU campaign, consulting ``store`` before executing.

    On a store hit the backend is never invoked (zero ``measure`` calls); on a
    miss the sampled work units go through ``backend`` — by default the fused
    :class:`~repro.runtime.backends.BatchedBackend`, which prepares the whole
    campaign as one cross-plan workload and is bit-identical to the serial
    path (noise draws are pinned per unit, not to execution order) — and the
    resulting table is stored before being returned.
    """
    backend = backend if backend is not None else BatchedBackend()
    store = store if store is not None else NullStore()
    key = campaign_key(machine, n, count, seed, max_leaf=max_leaf, max_children=max_children)
    cached = store.get(key)
    if cached is not None:
        return cached
    units = sample_units(n, count, seed, max_leaf=max_leaf, max_children=max_children)
    measurements = backend.measure_units(machine, units)
    table = MeasurementTable.from_measurements(measurements)
    store.put(key, table)
    return table


def measure_plan_list(
    machine: SimulatedMachine,
    plans: Iterable[Plan],
    *,
    seed: int,
    tag: str = "explicit",
    backend: ExecutionBackend | None = None,
) -> MeasurementTable:
    """Measure an explicit list of plans (all of one size) through a backend.

    Noise seeds are derived per index from ``(seed, tag, plan.n, index)``,
    matching the legacy ``SampleCampaign.measure_plans`` scheme exactly.
    Defaults to the fused :class:`~repro.runtime.backends.BatchedBackend`
    (bit-identical to serial execution, one prepared workload per batch).
    """
    backend = backend if backend is not None else BatchedBackend()
    plan_list: Sequence[Plan] = list(plans)
    if not plan_list:
        raise ValueError("measure_plan_list requires at least one plan")
    units = [
        WorkUnit(plan=plan, noise_seed=derive_seed(seed, tag, plan.n, index))
        for index, plan in enumerate(plan_list)
    ]
    measurements = backend.measure_units(machine, units)
    return MeasurementTable.from_measurements(measurements)
