"""Campaign execution on top of backends and stores.

This module is the runtime's analogue of the paper's measurement campaigns:
draw plans from the RSU distribution, derive one noise seed per sample, and
hand the resulting work units to an execution backend.  Plan sampling stays in
the driver (it is a sequential draw from one generator), so every backend
measures the exact same plans with the exact same seeds; that is what makes
serial, multiprocess and batched execution bit-identical.

The seed derivation scheme is unchanged from the original serial loop:
``derive_seed(seed, "plans", n, count)`` seeds the plan sampler and
``derive_seed(seed, "noise", n, index)`` seeds sample ``index``'s cycle-noise
draw, so tables produced through this module match the historical ones.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.machine.machine import SimulatedMachine
from repro.runtime.backends import BatchedBackend, ExecutionBackend, WorkUnit
from repro.runtime.store import CampaignKey, CampaignStore, NullStore, machine_config_hash
from repro.runtime.table import MeasurementTable
from repro.util.rng import as_generator, derive_seed
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.plan import MAX_UNROLLED, Plan
from repro.wht.random_plans import RSUSampler

__all__ = [
    "campaign_key",
    "named_plans_key",
    "sample_units",
    "run_campaign",
    "measure_plan_list",
]


def campaign_key(
    machine: SimulatedMachine,
    n: int,
    count: int,
    seed: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
) -> CampaignKey:
    """The content-addressed store key of one RSU campaign."""
    return CampaignKey(
        machine_hash=machine_config_hash(machine.config),
        n=n,
        count=count,
        seed=seed,
        max_leaf=max_leaf,
        max_children=max_children,
    )


def named_plans_key(
    machine: SimulatedMachine,
    plans: Sequence[Plan],
    seed: int,
    tag: str = "explicit",
) -> CampaignKey:
    """The content-addressed store key of one explicit-plan measurement table.

    Unlike :func:`campaign_key` — where ``(n, count, seed, sampler knobs)``
    fully determine the sampled plans — an explicit plan list is free-form,
    so the key digests the canonical plan keys of the list itself (order
    included: the noise seed of each entry depends on its index).  Two calls
    measuring the same plans in the same order under the same seed share one
    store entry; any difference in the list yields a disjoint key.
    """
    digest = hashlib.sha256(
        "\n".join(f"{tag}|{plan_key(plan)}" for plan in plans).encode("utf-8")
    ).hexdigest()[:16]
    return CampaignKey(
        machine_hash=machine_config_hash(machine.config),
        n=plans[0].n,
        count=len(plans),
        seed=seed,
        max_leaf=MAX_UNROLLED,
        max_children=None,
        kind=f"plans:{tag}:{digest}",
    )


def sample_units(
    n: int,
    count: int,
    seed: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
) -> list[WorkUnit]:
    """Draw ``count`` RSU plans of size ``2^n`` with per-sample noise seeds."""
    check_positive_int(n, "n")
    check_positive_int(count, "count")
    plan_rng = as_generator(derive_seed(seed, "plans", n, count))
    sampler = RSUSampler(max_leaf=max_leaf, max_children=max_children)
    return [
        WorkUnit(
            plan=sampler.sample(n, plan_rng),
            noise_seed=derive_seed(seed, "noise", n, index),
        )
        for index in range(count)
    ]


def run_campaign(
    machine: SimulatedMachine,
    n: int,
    count: int,
    *,
    seed: int,
    max_leaf: int = MAX_UNROLLED,
    max_children: int | None = None,
    backend: ExecutionBackend | None = None,
    store: CampaignStore | None = None,
) -> MeasurementTable:
    """Measure an RSU campaign, consulting ``store`` before executing.

    On a store hit the backend is never invoked (zero ``measure`` calls); on a
    miss the sampled work units go through ``backend`` — by default the fused
    :class:`~repro.runtime.backends.BatchedBackend`, which prepares the whole
    campaign as one cross-plan workload and is bit-identical to the serial
    path (noise draws are pinned per unit, not to execution order) — and the
    resulting table is stored before being returned.
    """
    backend = backend if backend is not None else BatchedBackend()
    store = store if store is not None else NullStore()
    key = campaign_key(machine, n, count, seed, max_leaf=max_leaf, max_children=max_children)
    cached = store.get(key)
    if cached is not None:
        return cached
    units = sample_units(n, count, seed, max_leaf=max_leaf, max_children=max_children)
    measurements = backend.measure_units(machine, units)
    table = MeasurementTable.from_measurements(measurements)
    store.put(key, table)
    return table


def measure_plan_list(
    machine: SimulatedMachine,
    plans: Iterable[Plan],
    *,
    seed: int,
    tag: str = "explicit",
    backend: ExecutionBackend | None = None,
    store: CampaignStore | None = None,
) -> MeasurementTable:
    """Measure an explicit list of plans (all of one size) through a backend.

    Noise seeds are derived per index from ``(seed, tag, plan.n, index)``,
    matching the legacy ``SampleCampaign.measure_plans`` scheme exactly.
    Defaults to the fused :class:`~repro.runtime.backends.BatchedBackend`
    (bit-identical to serial execution, one prepared workload per batch).

    ``store`` makes explicit-plan tables store-native, exactly like
    :func:`run_campaign`: the table is keyed by :func:`named_plans_key` (a
    digest of the plan list itself), consulted before measuring and written
    after.  Because every noise draw is derived from ``(seed, tag, n,
    index)``, a store hit is bit-identical to re-measuring — caching changes
    nothing but the work performed.  The default (``None``) preserves the
    historical uncached behaviour.
    """
    backend = backend if backend is not None else BatchedBackend()
    plan_list: Sequence[Plan] = list(plans)
    if not plan_list:
        raise ValueError("measure_plan_list requires at least one plan")
    store = store if store is not None else NullStore()
    key = named_plans_key(machine, plan_list, seed, tag=tag)
    cached = store.get(key)
    if cached is not None:
        return cached
    units = [
        WorkUnit(plan=plan, noise_seed=derive_seed(seed, tag, plan.n, index))
        for index, plan in enumerate(plan_list)
    ]
    measurements = backend.measure_units(machine, units)
    table = MeasurementTable.from_measurements(measurements)
    store.put(key, table)
    return table
