"""Deterministic fault injection for the campaign runtime.

The service's robustness story (DESIGN.md §12) is only worth anything if it
can be *exercised on demand*: a chaos run must fail the same way on every
machine, every CI shard and every bisect step.  This module provides that —
a :class:`FaultPlan` that decides, purely from a seed and a per-site call
counter, whether the *i*-th operation at an injection site fails, and two
wrappers that apply those decisions to real components:

* :class:`FaultyBackend` wraps any
  :class:`~repro.runtime.backends.ExecutionBackend` and injects thrown
  exceptions, added latency, simulated worker deaths and **mid-batch
  crashes** (the first ``k`` units of a batch execute for real, then the
  call dies — exactly the partial-progress shape that turns naive retry
  loops into duplicate-measurement machines).
* :class:`FaultyStore` wraps any :class:`~repro.runtime.store.CampaignStore`
  and makes record appends fail — either *before* anything is written
  (clean failure) or *after* writing plus **tearing the log's tail**
  (a crash mid-``write(2)``: the bytes are partially on disk, the caller
  saw an error, and a later reader must cope with the torn line).
* :class:`~repro.runtime.transport.FaultyTransport` (in the transport
  module) applies the plan's ``network`` spec to the wire: dropped frames,
  added latency, partial writes that disconnect mid-frame, abrupt
  disconnects and garbage frames — the failure shapes a socket client's
  reconnect/resubmit discipline must survive.  Sites whose name starts
  with ``"net"`` draw from the ``network`` spec.

Because every decision is ``derive_seed(seed, "fault", site, index)``-driven,
two runs over the same workload see the same fault at the same operation;
``REPRO_CHAOS_SEED`` (see ``tests/runtime/test_faults.py``) turns the CI
chaos job into a seed matrix instead of a dice roll.

Poison work is a separate axis: ``poison_plans`` names plan keys whose
batches *always* fail, independent of rates — the deterministic-poison job
that must end in the service's quarantine rather than an infinite retry
loop.

>>> plan = FaultPlan(seed=7, backend=FaultSpec(error_rate=0.25))
>>> chaotic = FaultyBackend(BatchedBackend(), plan)
>>> service = CampaignService(backend=chaotic)    # doctest: +SKIP
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.machine.machine import SimulatedMachine
from repro.machine.measurement import Measurement
from repro.runtime.backends import ExecutionBackend, WorkUnit
from repro.runtime.store import CampaignKey, CampaignStore, CostLogKey, CostRecords
from repro.runtime.table import MeasurementTable
from repro.util.rng import derive_seed
from repro.wht.encoding import plan_key

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "FaultSpec",
    "FaultDecision",
    "FaultPlan",
    "FaultyBackend",
    "FaultyStore",
]


class InjectedFault(RuntimeError):
    """An exception raised on purpose by a fault wrapper (an *expected* chaos
    failure, distinguishable from a real defect in test assertions)."""


class InjectedCrash(BaseException):
    """A simulated worker-thread death.

    Deliberately **not** an :class:`Exception`: the service's worker loop
    catches ``Exception`` for its retry discipline, so an ``InjectedCrash``
    escapes it and kills the thread exactly as a segfaulting C extension or
    an interpreter-level error would — the case worker supervision exists
    for.
    """


#: One in 2^53 resolution is plenty for rates; keep the draw integer-exact.
_DRAW_DENOMINATOR = float(1 << 53)


def _draw(seed: int, *tags: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from a seed and tags."""
    return (derive_seed(seed, *[str(tag) for tag in tags]) >> 10) / _DRAW_DENOMINATOR


@dataclass(frozen=True)
class FaultSpec:
    """Per-site fault rates (all independent probabilities in ``[0, 1]``).

    ``error_rate`` — raise :class:`InjectedFault` before doing any work.
    ``crash_rate`` — *backend only*: execute a prefix of the batch for real,
    then raise (partial progress, nothing reported to the caller).
    ``torn_tail_rate`` — *store only*: perform the append, then truncate the
    log mid-line and raise (a crash inside ``write(2)``).
    ``kill_rate`` — *backend only*: raise :class:`InjectedCrash`, killing the
    calling worker thread outright.
    ``delay_rate``/``delay`` — sleep ``delay`` seconds before proceeding
    (latency injection; the operation itself succeeds).

    At a **network** site (:class:`~repro.runtime.transport.FaultyTransport`)
    the same axes map onto wire failures: ``error`` drops the frame and
    resets the connection, ``crash`` writes a prefix of the frame's bytes
    and disconnects mid-frame (``crash_fraction`` picks how much of the
    frame lands), ``torn`` delivers a garbage frame (correct length prefix,
    corrupted payload), ``kill`` disconnects abruptly before writing
    anything, and ``delay`` adds latency.
    """

    error_rate: float = 0.0
    crash_rate: float = 0.0
    torn_tail_rate: float = 0.0
    kill_rate: float = 0.0
    delay_rate: float = 0.0
    delay: float = 0.001

    def __post_init__(self) -> None:
        for name in ("error_rate", "crash_rate", "torn_tail_rate", "kill_rate", "delay_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability in [0, 1], got {rate}")
        if self.delay < 0:
            raise ValueError(f"delay must be non-negative, got {self.delay}")

    @property
    def total_failure_rate(self) -> float:
        """The probability an operation at this site raises (any mode)."""
        ok = (
            (1.0 - self.error_rate)
            * (1.0 - self.crash_rate)
            * (1.0 - self.torn_tail_rate)
            * (1.0 - self.kill_rate)
        )
        return 1.0 - ok


@dataclass(frozen=True)
class FaultDecision:
    """What happens to one operation at one site (at most one failure mode)."""

    index: int
    error: bool = False
    crash_fraction: float | None = None  # backend: fraction of units to run first
    torn: bool = False
    kill: bool = False
    delay: float = 0.0

    @property
    def fails(self) -> bool:
        return self.error or self.crash_fraction is not None or self.torn or self.kill


class FaultPlan:
    """A seed-deterministic schedule of faults across named injection sites.

    Each site (``"backend"``, ``"store"``, ``"net-send"``/``"net-recv"``
    — any ``net*`` site draws from the ``network`` spec — any ``fleet*``
    site draws from the ``fleet`` spec (member kill / member partition,
    see :class:`~repro.runtime.fleet.FleetClient`), or any name a
    custom wrapper picks) owns a thread-safe call counter; the decision
    for call ``i`` is a
    pure function of ``(seed, site, i)`` — independent of thread timing, so
    a run is reproducible as long as the per-site *order* of operations is
    (which the service guarantees by serialising execution per machine and
    per shard writer).

    ``poison_plans`` accepts plans or plan-key strings; any backend batch
    containing one always raises, regardless of rates — the deterministic
    poison jobs the service must quarantine.
    """

    def __init__(
        self,
        seed: int = 0,
        backend: FaultSpec | None = None,
        store: FaultSpec | None = None,
        network: FaultSpec | None = None,
        fleet: FaultSpec | None = None,
        poison_plans: Sequence[object] = (),
    ):
        self.seed = int(seed)
        self.backend = backend if backend is not None else FaultSpec()
        self.store = store if store is not None else FaultSpec()
        self.network = network if network is not None else FaultSpec()
        self.fleet = fleet if fleet is not None else FaultSpec()
        self.poison_keys = frozenset(
            key if isinstance(key, str) else plan_key(key) for key in poison_plans
        )
        self._lock = threading.Lock()
        self._counters: dict[str, itertools.count] = {}
        self._injected: dict[str, int] = {}
        self._calls: dict[str, int] = {}

    def _spec_for(self, site: str) -> FaultSpec:
        if site == "store":
            return self.store
        if site.startswith("fleet"):
            return self.fleet
        if site.startswith("net"):
            return self.network
        return self.backend

    def decide(self, site: str) -> FaultDecision:
        """Consume one call at ``site`` and return its fate.

        At most one failure mode fires per call (priority: kill, crash,
        torn tail, error), plus an independent latency decision — an
        operation can be slow *and* then fail, like real hardware.
        """
        with self._lock:
            counter = self._counters.get(site)
            if counter is None:
                counter = self._counters[site] = itertools.count()
            index = next(counter)
            self._calls[site] = index + 1
        decision = self.peek(site, index)
        if decision.fails:
            with self._lock:
                self._injected[site] = self._injected.get(site, 0) + 1
        return decision

    def peek(self, site: str, index: int) -> FaultDecision:
        """The decision for call ``index`` at ``site``, without consuming it."""
        spec = self._spec_for(site)
        kill = _draw(self.seed, "fault", site, index, "kill") < spec.kill_rate
        crash = _draw(self.seed, "fault", site, index, "crash") < spec.crash_rate
        torn = _draw(self.seed, "fault", site, index, "torn") < spec.torn_tail_rate
        error = _draw(self.seed, "fault", site, index, "error") < spec.error_rate
        delayed = _draw(self.seed, "fault", site, index, "delay") < spec.delay_rate
        fraction: float | None = None
        if kill:
            crash = torn = error = False
        elif crash:
            fraction = _draw(self.seed, "fault", site, index, "fraction")
            torn = error = False
        elif torn:
            error = False
        return FaultDecision(
            index=index,
            error=error,
            crash_fraction=fraction,
            torn=torn,
            kill=kill,
            delay=spec.delay if delayed else 0.0,
        )

    def injected(self, site: str | None = None) -> int:
        """How many failures have been injected (at ``site``, or in total)."""
        with self._lock:
            if site is not None:
                return self._injected.get(site, 0)
            return sum(self._injected.values())

    def calls(self, site: str) -> int:
        """How many operations ``site`` has seen."""
        with self._lock:
            return self._calls.get(site, 0)

    def __repr__(self) -> str:
        with self._lock:
            calls = dict(self._calls)
            injected = dict(self._injected)
        return (
            f"FaultPlan(seed={self.seed}, calls={calls}, injected={injected}, "
            f"poison={len(self.poison_keys)})"
        )


class FaultyBackend:
    """An :class:`~repro.runtime.backends.ExecutionBackend` that misbehaves
    on the :class:`FaultPlan`'s schedule.

    Failure modes, in the order they are applied to one ``measure_units``
    call:

    1. **Poison**: a batch containing a poisoned plan always raises —
       the deterministic failure that must end in quarantine.
    2. **Kill**: raise :class:`InjectedCrash` (a ``BaseException``) —
       the calling worker thread dies.
    3. **Crash mid-batch**: really execute the first ``k`` units on the
       machine (mutating simulator state, warming caches), then raise.
       Nothing is reported to the caller — the retry must cope with the
       partial progress without persisting duplicates.
    4. **Error**: raise before touching the machine.
    5. **Delay**: sleep, then execute normally.
    """

    def __init__(self, inner: ExecutionBackend, plan: FaultPlan, site: str = "backend"):
        self.inner = inner
        self.plan = plan
        self.site = site
        self.name = f"faulty-{getattr(inner, 'name', type(inner).__name__)}"

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> "list[Measurement]":
        poisoned = [
            key for key in (plan_key(unit.plan) for unit in units)
            if key in self.plan.poison_keys
        ]
        if poisoned:
            raise InjectedFault(f"poisoned plan in batch: {poisoned[0]}")
        decision = self.plan.decide(self.site)
        if decision.delay > 0.0:
            time.sleep(decision.delay)
        if decision.kill:
            raise InjectedCrash(f"injected worker death (call {decision.index})")
        if decision.crash_fraction is not None:
            prefix = units[: max(1, int(len(units) * decision.crash_fraction))]
            if len(prefix) < len(units):
                self.inner.measure_units(machine, list(prefix))
            raise InjectedFault(
                f"injected mid-batch crash after {len(prefix)}/{len(units)} units "
                f"(call {decision.index})"
            )
        if decision.error:
            raise InjectedFault(f"injected backend failure (call {decision.index})")
        return self.inner.measure_units(machine, units)

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()

    def __repr__(self) -> str:
        return f"FaultyBackend({self.inner!r}, {self.plan!r})"


def _log_path_for(store: object, key: CostLogKey):
    """The on-disk append-log path behind ``store`` for ``key``, if any."""
    for attr in ("shard_log_path", "log_path"):
        resolve = getattr(store, attr, None)
        if callable(resolve):
            return resolve(key)
    return None


class FaultyStore:
    """A :class:`~repro.runtime.store.CampaignStore` whose record appends
    fail on the :class:`FaultPlan`'s schedule.

    Two failure modes (reads always pass through — the lock-free reader path
    is exercised by the *consequences*, not by failing the read call):

    * **Error**: raise before delegating — nothing was written.
    * **Torn tail**: delegate the append, then truncate the log file
      mid-line and raise.  This is a crash inside ``write(2)``: some bytes
      landed, the writer saw an error, and the log now ends in a partial
      line a reader must skip.  A retried append rewrites the same values,
      so recovery is an idempotent merge, never a duplicate record.

    Disk-backed stores (:class:`~repro.runtime.store.DiskStore`,
    :class:`~repro.runtime.sharded_store.ShardedRecordStore`) expose their
    log path for the tear; for in-memory stores a scheduled tear degrades to
    a plain post-append error.
    """

    def __init__(self, inner: CampaignStore, plan: FaultPlan, site: str = "store"):
        self.inner = inner
        self.plan = plan
        self.site = site

    # -- faulted write path ------------------------------------------------------

    def append_cost_records(
        self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]
    ) -> None:
        decision = self.plan.decide(self.site)
        if decision.delay > 0.0:
            time.sleep(decision.delay)
        if decision.error:
            raise InjectedFault(f"injected store failure (call {decision.index})")
        self.inner.append_cost_records(key, records)
        if decision.torn:
            self._tear_tail(key)
            raise InjectedFault(
                f"injected crash mid-append: log tail torn (call {decision.index})"
            )

    def _tear_tail(self, key: CostLogKey) -> None:
        path = _log_path_for(self.inner, key)
        if path is None or not os.path.exists(path):
            return
        size = os.path.getsize(path)
        if size < 4:
            return
        with open(path, "rb") as handle:
            handle.seek(max(0, size - 512))
            tail = handle.read()
        # Cut into the final record: strip the trailing newline, then drop
        # half of the last line so what remains cannot parse as JSON.
        stripped = tail.rstrip(b"\n")
        last_line_start = stripped.rfind(b"\n") + 1
        last_line = stripped[last_line_start:]
        if not last_line:
            return
        keep = size - len(tail) + last_line_start + max(1, len(last_line) // 2)
        with open(path, "rb+") as handle:
            handle.truncate(keep)

    # -- transparent delegation --------------------------------------------------

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return self.inner.get(key)

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        self.inner.put(key, table)

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        return self.inner.get_cost_records(key)

    def compact_cost_records(self, key: CostLogKey) -> None:
        self.inner.compact_cost_records(key)

    def get_cost_table(self, key) -> "dict[str, float] | None":
        return self.inner.get_cost_table(key)

    def put_cost_table(self, key, costs: "dict[str, float]") -> None:
        self.inner.put_cost_table(key, costs)

    def clear(self) -> None:
        self.inner.clear()

    def close(self) -> None:
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()

    def __getattr__(self, name: str):
        # Optional-protocol passthrough (shard_stats, drain_compactions, ...):
        # the wrapper is as capable as whatever it wraps.
        return getattr(self.inner, name)

    def __repr__(self) -> str:
        return f"FaultyStore({self.inner!r}, {self.plan!r})"
