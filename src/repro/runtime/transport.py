"""Multi-host service transport: JSON frames over TCP / Unix-domain sockets.

The :class:`~repro.runtime.service.CampaignService` makes measurement a
*service* for any number of in-process tenants; this module makes it a
service for tenants on **other hosts**.  PR 6's backend protocol and
single-writer shard discipline left exactly one gap — a wire — and the
robustness machinery of DESIGN.md §12 (deterministic retries, idempotent
re-execution, chaos injection) extends across it unchanged:

* :func:`serve_tcp` / :func:`serve_unix` start a :class:`ServiceServer` —
  a threaded accept loop fronting an existing service.  Each connection
  speaks **length-prefixed JSON frames** (4-byte big-endian length, then a
  UTF-8 JSON object); submits dispatch to per-request handler threads so a
  slow batch never blocks the connection's heartbeats.
* :class:`RemoteServiceClient` implements the full engine surface
  (``records`` / ``cost`` / ``batch`` / ``__call__`` and the
  ``evaluations``/``measured``/``fallbacks`` counters) over a supervised
  connection, so ``Session.connect("tcp://host:port")`` and ``dp_search``
  run unchanged against a remote fleet — bit-identically to a private
  serial engine, because plans travel as canonical plan keys and noise
  seeds derive from ``(seed, "plan-cost", plan_key)`` on whichever side
  measures.

Robustness discipline
---------------------

* **Reconnect.**  Connect and request timeouts, with exponential backoff
  and deterministic jitter between attempts — the same
  ``min(base * 2**(k-1), cap)``-times-``[0.5, 1.5)`` schedule the
  service's retry heap uses, derived through
  :func:`~repro.util.rng.derive_seed` so two identically-configured
  clients back off on identical schedules.
* **Idempotent request ids.**  Every submit carries a
  ``"<client>:<seq>"`` id.  A resubmit after a reconnect — the response
  frame was lost, not the work — is answered from the service's
  request-id table (:meth:`CampaignService.submit`'s ``request_id``):
  the original ticket, whether in flight or finished.  No duplicate
  measurement, ever; resubmits show up in ``service.stats().resubmits``.
* **Heartbeats and idle expiry.**  The client pings on an interval; the
  server expires connections idle past ``idle_timeout`` (pings count as
  activity, in-flight submits do too).  An expired client reconnects
  transparently on its next request.
* **Backpressure.**  Per-connection in-flight submits are bounded; past
  the bound the server answers a ``busy`` frame immediately and the
  client waits out a backoff before resubmitting the same id.
* **Drain.**  :meth:`ServiceServer.drain` stops accepting new submits
  (they get a ``draining`` frame, which a ``fallback=True`` client turns
  into a private-engine evaluation), lets in-flight work finish, and
  returns once the wire is quiet.
* **Chaos.**  :class:`FaultyTransport` wraps the client's frame layer and
  applies a :class:`~repro.runtime.faults.FaultPlan`'s ``network`` spec:
  dropped frames, added latency, partial writes that disconnect
  mid-frame, abrupt disconnects, garbage frames.  The invariant the
  chaos suite pins end-to-end: a DP search over a ~20%-faulty socket to
  a ~20%-faulty backend completes **bit-identically** with zero
  duplicate or conflicting persisted records.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os
import socket
import struct
import threading
import time
import uuid
from typing import Mapping, Sequence

from repro.machine.cache import CacheConfig
from repro.machine.cpu import CycleModel, InstructionCostModel
from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.runtime.backends import BatchedBackend
from repro.runtime.cost_engine import CostEngine, ObjectiveCost
from repro.runtime.faults import FaultPlan
from repro.runtime.metrics import CostRecord
from repro.runtime.objectives import Objective, resolve_objective
from repro.runtime.service import CampaignJob, CampaignService, ServiceError
from repro.runtime.store import MemoryStore
from repro.util.lru import LRUCache
from repro.util.rng import derive_seed
from repro.wht.encoding import plan_key
from repro.wht.plan import Plan
from repro.wht.grammar import parse_plan

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "TransportError",
    "RemoteServiceError",
    "FrameTransport",
    "FaultyTransport",
    "ServiceServer",
    "serve_tcp",
    "serve_unix",
    "RemoteTransport",
    "RemoteServiceClient",
    "machine_config_to_wire",
    "machine_config_from_wire",
]

#: Protocol revision spoken by both ends; a mismatch fails the handshake.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's body.  Generous for record batches, small
#: enough that a corrupted length prefix cannot trigger a giant allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class TransportError(ServiceError):
    """A connection-level failure (dial, send, receive, timeout, garbage).

    Retryable by design: the request may not have reached the service, or
    the response may have been lost after the work finished — either way
    the client reconnects and resubmits the *same request id*, and the
    service's idempotency table makes the retry free.
    """


class RemoteServiceError(ServiceError):
    """The server answered, and the answer was a failure (quarantined work,
    a shut-down service, a protocol violation).  Not retryable at the
    transport level — resubmitting would replay the same answer."""


# -- frame codec ---------------------------------------------------------------


class FrameTransport:
    """Length-prefixed JSON frames over one connected socket.

    The codec is deliberately minimal: 4-byte big-endian body length, then
    the body — one UTF-8 JSON object.  ``recv`` returns ``None`` on a clean
    EOF *between* frames and raises :class:`TransportError` on a mid-frame
    disconnect or an unparseable body, so callers can tell a graceful
    goodbye from a torn one.  Not internally locked; callers serialise
    sends (the connection layers here do).
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock

    @staticmethod
    def encode(payload: Mapping) -> bytes:
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        if len(body) > MAX_FRAME_BYTES:
            raise TransportError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
        return _LENGTH.pack(len(body)) + body

    def send_bytes(self, data: bytes) -> None:
        try:
            self.sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def send(self, payload: Mapping) -> None:
        self.send_bytes(self.encode(payload))

    def _read_exact(self, count: int, *, at_boundary: bool) -> "bytes | None":
        chunks: "list[bytes]" = []
        remaining = count
        while remaining:
            try:
                chunk = self.sock.recv(min(remaining, 1 << 20))
            except OSError as exc:
                raise TransportError(f"receive failed: {exc}") from exc
            if not chunk:
                if at_boundary and remaining == count:
                    return None  # clean EOF between frames
                raise TransportError(
                    f"mid-frame disconnect: {count - remaining}/{count} bytes"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> "dict | None":
        prefix = self._read_exact(_LENGTH.size, at_boundary=True)
        if prefix is None:
            return None
        (length,) = _LENGTH.unpack(prefix)
        if length > MAX_FRAME_BYTES:
            raise TransportError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
        body = self._read_exact(length, at_boundary=False)
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise TransportError(f"garbage frame: {exc}") from exc
        if not isinstance(frame, dict):
            raise TransportError(f"frame body must be an object, got {type(frame).__name__}")
        return frame

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close never fails on healthy FDs
            pass


class FaultyTransport:
    """A frame transport that misbehaves on a :class:`FaultPlan`'s schedule.

    Applies the plan's ``network`` spec (sites ``"net-send"`` and
    ``"net-recv"``) to a wrapped :class:`FrameTransport`:

    * **error** — *drop*: the frame never reaches the wire and the
      connection is reset (a lost packet / RST).
    * **crash** — *partial write then disconnect*: ``crash_fraction`` of
      the frame's bytes land, then the socket closes mid-frame — the peer
      sees a torn frame and must discard it.
    * **torn** — *garbage frame*: the length prefix is intact but the
      body's bytes are corrupted; the send "succeeds" and the *receiver*
      chokes, exactly like wire corruption.
    * **kill** — *abrupt disconnect* before anything is written.
    * **delay** — added latency; the operation then proceeds normally.

    On the receive path every failure mode degrades to "the response was
    lost and the connection is dead" — which is the interesting case: the
    server may have *completed* the work, and only the request-id
    idempotency table keeps the client's resubmit from measuring twice.
    """

    def __init__(
        self,
        inner: FrameTransport,
        plan: FaultPlan,
        send_site: str = "net-send",
        recv_site: str = "net-recv",
    ):
        self.inner = inner
        self.plan = plan
        self.send_site = send_site
        self.recv_site = recv_site

    def send(self, payload: Mapping) -> None:
        decision = self.plan.decide(self.send_site)
        if decision.delay > 0.0:
            time.sleep(decision.delay)
        if decision.kill:
            self.inner.close()
            raise TransportError(f"injected abrupt disconnect (call {decision.index})")
        if decision.error:
            self.inner.close()
            raise TransportError(f"injected dropped frame (call {decision.index})")
        data = self.inner.encode(payload)
        if decision.crash_fraction is not None:
            cut = max(1, min(len(data) - 1, int(len(data) * decision.crash_fraction)))
            try:
                self.inner.send_bytes(data[:cut])
            finally:
                self.inner.close()
            raise TransportError(
                f"injected mid-frame disconnect after {cut}/{len(data)} bytes "
                f"(call {decision.index})"
            )
        if decision.torn:
            prefix, body = data[: _LENGTH.size], bytearray(data[_LENGTH.size :])
            for offset in range(0, len(body), 2):
                body[offset] ^= 0xA5  # unparseable, same length
            self.inner.send_bytes(prefix + bytes(body))
            return  # the sender believes it succeeded; the receiver chokes
        self.inner.send_bytes(data)

    def recv(self) -> "dict | None":
        decision = self.plan.decide(self.recv_site)
        if decision.delay > 0.0:
            time.sleep(decision.delay)
        if decision.kill:
            self.inner.close()
            raise TransportError(f"injected receive disconnect (call {decision.index})")
        if decision.fails:
            # Drop / tear / garble the inbound frame: consume it (the server
            # really sent it — the work happened), then fail the connection.
            try:
                self.inner.recv()
            except TransportError:
                pass
            self.inner.close()
            raise TransportError(f"injected lost response (call {decision.index})")
        return self.inner.recv()

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"FaultyTransport({self.inner!r}, {self.plan!r})"


# -- machine configuration on the wire -----------------------------------------


def machine_config_to_wire(config: MachineConfig) -> dict:
    """``config`` as a JSON-serialisable payload (nested plain dicts)."""
    return dataclasses.asdict(config)


def machine_config_from_wire(payload: Mapping) -> MachineConfig:
    """Rebuild a :class:`MachineConfig` from :func:`machine_config_to_wire`.

    Every nested field is a flat dataclass of scalars, so the round-trip is
    exact — and therefore so is the machine hash, which is what keeps a
    remote submit landing in the same record shard as a local one.
    """
    l2 = payload.get("l2")
    return MachineConfig(
        name=str(payload["name"]),
        l1=CacheConfig(**payload["l1"]),
        l2=CacheConfig(**l2) if l2 is not None else None,
        instruction_model=InstructionCostModel(**payload["instruction_model"]),
        cycle_model=CycleModel(**payload["cycle_model"]),
        element_size=int(payload["element_size"]),
        vectorized_caches=bool(payload["vectorized_caches"]),
    )


# -- server --------------------------------------------------------------------


class _ServerConnection:
    """One accepted client connection: reader loop + per-submit handlers."""

    def __init__(self, server: "ServiceServer", sock: socket.socket, peer: str):
        self.server = server
        self.frames = FrameTransport(sock)
        self.peer = peer
        self.sock = sock
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self.inflight = 0
        self.last_activity = time.monotonic()
        self.closed = False
        self.thread = threading.Thread(
            target=self._run, name=f"{server.name}-conn-{peer}", daemon=True
        )

    def _reply(self, payload: Mapping) -> None:
        try:
            with self._send_lock:
                self.frames.send(payload)
        except TransportError:
            self.close()  # the client is gone; its resubmit will be deduped

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
        self.frames.close()

    def _run(self) -> None:
        try:
            while True:
                try:
                    frame = self.frames.recv()
                except TransportError:
                    break  # torn frame or garbage: drop the connection
                if frame is None:
                    break
                self.last_activity = time.monotonic()
                self._dispatch(frame)
        finally:
            self.close()
            self.server._forget(self)

    def _dispatch(self, frame: Mapping) -> None:
        kind = frame.get("type")
        rid = frame.get("id")
        if kind == "ping":
            pong = {"type": "pong", "id": rid, "draining": self.server.draining}
            if self.server.fleet is not None:
                pong["fleet"] = self.server.fleet.gossip()
            self._reply(pong)
        elif kind == "hello":
            if frame.get("version") != PROTOCOL_VERSION:
                self._reply(
                    {
                        "type": "error",
                        "id": rid,
                        "message": f"protocol version mismatch: server speaks "
                        f"{PROTOCOL_VERSION}, client sent {frame.get('version')!r}",
                    }
                )
                self.close()
                return
            hello = {
                "type": "hello",
                "id": rid,
                "version": PROTOCOL_VERSION,
                "server": self.server.service.name,
                "draining": self.server.draining,
            }
            if self.server.fleet is not None:
                hello["fleet"] = self.server.fleet.gossip()
            self._reply(hello)
        elif kind == "submit":
            self._accept_submit(frame, rid)
        elif kind == "stats":
            stats = self.server.service.stats()
            self._reply(
                {
                    "type": "stats",
                    "id": rid,
                    "stats": {
                        "jobs": stats.jobs,
                        "measured": stats.measured,
                        "store_hits": stats.store_hits,
                        "dedup_savings": stats.dedup_savings,
                        "retries": stats.retries,
                        "retrying": stats.retrying,
                        "next_retry_eta": stats.next_retry_eta,
                        "resubmits": stats.resubmits,
                        "failures": stats.failures,
                        "quarantined": stats.quarantined,
                        "members": stats.members,
                        "members_healthy": stats.members_healthy,
                        "redirects": stats.redirects,
                        "failovers": stats.failovers,
                    },
                }
            )
        elif kind == "health":
            health = self.server.service.health()
            self._reply(
                {
                    "type": "health",
                    "id": rid,
                    "state": "draining" if self.server.draining else health.state,
                    "detail": health.describe(),
                }
            )
        elif kind == "bye":
            self.close()
        else:
            self._reply(
                {"type": "error", "id": rid, "message": f"unknown frame type {kind!r}"}
            )

    def _accept_submit(self, frame: Mapping, rid: object) -> None:
        if self.server.draining or self.server.closed:
            self.server._count("drained")
            self._reply({"type": "draining", "id": rid})
            return
        with self._lock:
            if self.inflight >= self.server.max_inflight:
                self.server._count("backpressure")
                self._reply(
                    {
                        "type": "busy",
                        "id": rid,
                        "inflight": self.inflight,
                        "limit": self.server.max_inflight,
                    }
                )
                return
            self.inflight += 1
        self.server._begin_request()
        threading.Thread(
            target=self._run_submit,
            args=(frame, rid),
            name=f"{self.server.name}-submit-{rid}",
            daemon=True,
        ).start()

    def _forward_submit(
        self, frame: Mapping, rid: object, owner: str, owner_keys: "list[str]"
    ) -> "tuple[int, dict[str, dict]] | None":
        """One owner-redirect hop: relay the misdirected keys to ``owner``.

        The forwarded frame carries ``no_forward`` (a second hop is never
        taken — two servers with conflicting ring views must not bounce a
        batch between them) and an id derived from the original request
        id plus the key subset, so the owner's ticket table dedupes a
        resubmitted forward exactly like a direct resubmit.  Returns
        ``None`` when the owner is unreachable or draining — the caller
        adopts the keys locally (a server-side failover).
        """
        fleet = self.server.fleet
        subset = derive_seed(0, "fleet-forward", owner, *owner_keys) % (1 << 32)
        payload = dict(frame)
        payload["plans"] = list(owner_keys)
        payload["id"] = f"{rid}>{subset:08x}"
        payload["no_forward"] = True
        try:
            reply = fleet.peer_transport(owner).call(payload, timeout=None)
        except (TransportError, RemoteServiceError):
            fleet.mark_peer(owner, "dead")
            return None
        if reply.get("type") != "result":
            if reply.get("type") == "draining":
                fleet.mark_peer(owner, "draining")
            return None
        values = {record["p"]: record["v"] for record in reply["records"]}
        return int(reply.get("owned", 0)), values

    def _run_submit(self, frame: Mapping, rid: object) -> None:
        try:
            try:
                config = self.server._config_from(frame["machine"])
                keys = [str(key) for key in frame["plans"]]
                metrics = tuple(frame["metrics"])
                seed = int(frame.get("seed", 0))
                deadline = frame.get("deadline")
                deadline = float(deadline) if deadline is not None else None
            except (KeyError, TypeError, ValueError) as exc:
                self._reply(
                    {"type": "error", "id": rid, "message": f"malformed submit: {exc}"}
                )
                return
            values: "dict[str, dict]" = {}
            owned = 0
            redirects = 0
            local_keys = keys
            fleet = self.server.fleet
            if fleet is not None and not frame.get("no_forward"):
                digest = self.server.service._hash_for(config)
                local_keys, forwarded = fleet.split(digest, keys)
                for owner, owner_keys in forwarded.items():
                    outcome = self._forward_submit(frame, rid, owner, owner_keys)
                    if outcome is None:
                        # The owner is gone: adopt its keys locally.  The
                        # shared record space dedupes whatever it persisted.
                        local_keys = local_keys + owner_keys
                        self.server.service.note_fleet(failovers=1)
                    else:
                        redirects += 1
                        self.server.service.note_fleet(redirects=1)
                        owned += outcome[0]
                        values.update(outcome[1])
            if local_keys:
                try:
                    plans = tuple(self.server._plan_from(key) for key in local_keys)
                except (KeyError, TypeError, ValueError) as exc:
                    self._reply(
                        {"type": "error", "id": rid, "message": f"malformed submit: {exc}"}
                    )
                    return
                job = CampaignJob(
                    machine_config=config,
                    plan_batch=plans,
                    metrics=metrics,
                    seed=seed,
                    scale=frame.get("scale"),
                    deadline=deadline,
                )
                request_id = str(rid) if rid is not None else None
                if request_id is not None and local_keys != keys:
                    # The work set shrank/grew under this id (fleet split):
                    # key the ticket by the subset too, so a resubmit after
                    # a membership change never replays a stale ticket.
                    subset = derive_seed(0, "fleet-subset", *local_keys) % (1 << 32)
                    request_id = f"{request_id}#{subset:08x}"
                try:
                    ticket = self.server.service.submit(job, request_id=request_id)
                    records = ticket.result()
                except ServiceError as exc:
                    self._reply({"type": "error", "id": rid, "message": str(exc)})
                    return
                owned += ticket.owned_units
                for record in records:
                    values[record.plan_key] = record.values
            try:
                reply_records = [{"p": key, "v": values[key]} for key in keys]
            except KeyError as exc:  # pragma: no cover - a peer answered short
                self._reply(
                    {"type": "error", "id": rid, "message": f"fleet merge missed {exc}"}
                )
                return
            reply = {
                "type": "result",
                "id": rid,
                "owned": owned,
                "records": reply_records,
            }
            if redirects:
                reply["redirects"] = redirects
            self._reply(reply)
        finally:
            with self._lock:
                self.inflight -= 1
            self.last_activity = time.monotonic()
            self.server._end_request()


class ServiceServer:
    """A threaded socket front-end for one :class:`CampaignService`.

    Accepts connections on a bound listener (see :func:`serve_tcp` /
    :func:`serve_unix`), speaks the frame protocol, and maps ``submit``
    frames onto :meth:`CampaignService.submit` with the frame's request id
    — so reconnecting clients dedupe against in-flight and completed work.
    The server fronts the service; it does not own it (closing the server
    leaves the service running for in-process tenants).

    Parameters
    ----------
    max_inflight:
        Per-connection bound on concurrently executing submits; past it
        the connection answers ``busy`` frames (explicit backpressure)
        instead of queueing unboundedly.
    idle_timeout:
        Seconds of inactivity (no frames, no executing submits) after
        which a connection is expired server-side.  ``None`` disables
        expiry.  Clients heartbeat to stay under it, and reconnect
        transparently when expired anyway.
    """

    def __init__(
        self,
        service: CampaignService,
        listener: socket.socket,
        url: str,
        *,
        max_inflight: int = 8,
        idle_timeout: "float | None" = 30.0,
        name: "str | None" = None,
        unix_path: "str | None" = None,
    ):
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive or None, got {idle_timeout}")
        self.service = service
        self.url = url
        self.name = name or f"{service.name}-server"
        self.max_inflight = int(max_inflight)
        self.idle_timeout = idle_timeout
        self._listener = listener
        self._unix_path = unix_path
        self._lock = threading.Lock()
        self._quiet = threading.Condition(self._lock)
        self._connections: "set[_ServerConnection]" = set()
        self._active_requests = 0
        self._counters = {
            "connections": 0,
            "requests": 0,
            "backpressure": 0,
            "drained": 0,
            "expired": 0,
        }
        self.draining = False
        self.closed = False
        #: Fleet membership view (see :meth:`join_fleet`); None standalone.
        self.fleet = None
        self._configs: "LRUCache[str, MachineConfig]" = LRUCache(64)
        self._plans: "LRUCache[str, Plan]" = LRUCache(4096)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"{self.name}-accept", daemon=True
        )
        self._accept_thread.start()
        self._sweeper: "threading.Thread | None" = None
        if idle_timeout is not None:
            self._sweeper = threading.Thread(
                target=self._sweep_idle, name=f"{self.name}-sweeper", daemon=True
            )
            self._sweeper.start()

    # -- request-side caches -----------------------------------------------------

    def _config_from(self, payload: Mapping) -> MachineConfig:
        token = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with self._lock:
            cached = self._configs.get(token)
        if cached is not None:
            return cached
        config = machine_config_from_wire(payload)
        with self._lock:
            self._configs.put(token, config)
        return config

    def _plan_from(self, key: str) -> Plan:
        with self._lock:
            cached = self._plans.get(key)
        if cached is not None:
            return cached
        plan = parse_plan(key)
        with self._lock:
            self._plans.put(key, plan)
        return plan

    # -- bookkeeping -------------------------------------------------------------

    def _count(self, name: str) -> None:
        with self._lock:
            self._counters[name] += 1

    def _begin_request(self) -> None:
        with self._lock:
            self._counters["requests"] += 1
            self._active_requests += 1

    def _end_request(self) -> None:
        with self._quiet:
            self._active_requests -= 1
            self._quiet.notify_all()

    def _forget(self, connection: _ServerConnection) -> None:
        with self._quiet:
            self._connections.discard(connection)
            self._quiet.notify_all()

    # -- accept / expiry loops ---------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if self.closed:
                sock.close()
                return
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # Unix-domain sockets have no Nagle to disable
            peer = f"{addr[0]}:{addr[1]}" if isinstance(addr, tuple) else "unix"
            connection = _ServerConnection(self, sock, peer)
            with self._lock:
                self._counters["connections"] += 1
                self._connections.add(connection)
            connection.thread.start()

    def _sweep_idle(self) -> None:
        interval = max(0.05, min(self.idle_timeout / 4.0, 1.0))
        while not self.closed:
            time.sleep(interval)
            now = time.monotonic()
            with self._lock:
                candidates = list(self._connections)
            for connection in candidates:
                with connection._lock:
                    busy = connection.inflight > 0
                if busy or connection.closed:
                    continue
                if now - connection.last_activity > self.idle_timeout:
                    self._count("expired")
                    connection.close()

    # -- fleet membership --------------------------------------------------------

    def join_fleet(self, members: "Sequence[str]", self_url: "str | None" = None):
        """Join a fleet: enable shard-ownership checks and owner-redirects.

        ``members`` lists every member URL (this server's own URL is added
        if missing).  From here on, submit frames are checked against the
        rendezvous ring: misdirected keys are forwarded one hop to their
        current owner, membership gossip rides on hello/pong replies, and
        the fronted service reports fleet fields in its stats.  Returns
        the attached :class:`~repro.runtime.fleet.FleetView`.
        """
        from repro.runtime.fleet import FleetView

        view = FleetView(members, self_url or self.url)
        self.fleet = view
        self.service.attach_fleet(view)
        return view

    # -- lifecycle ---------------------------------------------------------------

    def drain(self, timeout: "float | None" = None) -> bool:
        """Refuse new submits, let in-flight work finish, return once quiet.

        New ``submit`` frames are answered with ``draining`` immediately
        (a ``fallback=True`` client turns that into a private-engine
        evaluation); connections stay open for heartbeats and status.
        Returns whether the wire went quiet within ``timeout``.
        """
        self.draining = True
        if self.fleet is not None:
            # Handoff: gossip the drain so clients re-stripe and peers stop
            # forwarding here before the wire even answers ``draining``.
            self.fleet.state = "draining"
        with self._quiet:
            quiet = self._quiet.wait_for(
                lambda: self._active_requests == 0, timeout=timeout
            )
        if quiet:
            self.service.drain()
        return quiet

    def close(self, drain: bool = True) -> None:
        """Stop accepting, optionally drain in-flight work, drop connections."""
        if self.closed:
            return
        if drain:
            self.drain()
        self.closed = True
        try:
            # shutdown() wakes the thread blocked in accept(); close() alone
            # would leave it parked until the join timeout.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        self._accept_thread.join(timeout=5.0)
        if self.fleet is not None:
            self.fleet.close()
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- observability -----------------------------------------------------------

    def stats(self) -> dict:
        """Transport-level counters (service-level ones live in the service)."""
        with self._lock:
            snapshot = dict(self._counters)
            snapshot["open_connections"] = len(self._connections)
            snapshot["active_requests"] = self._active_requests
            snapshot["draining"] = self.draining
        return snapshot

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("draining" if self.draining else "open")
        return f"ServiceServer({self.url!r}, {state}, service={self.service.name!r})"


def serve_tcp(
    service: CampaignService,
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs: object,
) -> ServiceServer:
    """Front ``service`` with a TCP :class:`ServiceServer`.

    ``port=0`` binds an ephemeral port; the returned server's ``url``
    (``tcp://host:port``) is what remote sessions connect to::

        with repro.serve_tcp(service) as server:
            sess = repro.Session.connect(server.url)
            best = sess.search(12)
    """
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        listener.bind((host, int(port)))
        listener.listen(128)
    except OSError:
        listener.close()
        raise
    bound_host, bound_port = listener.getsockname()[:2]
    return ServiceServer(
        service, listener, f"tcp://{bound_host}:{bound_port}", **kwargs
    )


def serve_unix(service: CampaignService, path: "str | os.PathLike[str]", **kwargs: object) -> ServiceServer:
    """Front ``service`` with a Unix-domain-socket :class:`ServiceServer`."""
    path = os.fspath(path)
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        listener.bind(path)
        listener.listen(128)
    except OSError:
        listener.close()
        raise
    return ServiceServer(service, listener, f"unix://{path}", unix_path=path, **kwargs)


# -- client --------------------------------------------------------------------


class _ReplySlot:
    __slots__ = ("event", "reply", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.reply: "dict | None" = None
        self.error: "TransportError | None" = None


class _ClientConnection:
    """One live connection: demuxed replies keyed by request id."""

    def __init__(self, transport: "FrameTransport | FaultyTransport"):
        self.transport = transport
        self._send_lock = threading.Lock()
        self._lock = threading.Lock()
        self._pending: "dict[str, _ReplySlot]" = {}
        self.alive = True
        self._reader = threading.Thread(
            target=self._read_loop, name="remote-client-reader", daemon=True
        )
        self._reader.start()

    def _read_loop(self) -> None:
        try:
            while True:
                frame = self.transport.recv()
                if frame is None:
                    raise TransportError("server closed the connection")
                slot = None
                rid = frame.get("id")
                with self._lock:
                    if rid is not None:
                        slot = self._pending.pop(rid, None)
                if slot is not None:
                    slot.reply = frame
                    slot.event.set()
        except (TransportError, OSError) as exc:
            error = exc if isinstance(exc, TransportError) else TransportError(str(exc))
            self.fail(error)

    def fail(self, error: TransportError) -> None:
        with self._lock:
            if not self.alive:
                return
            self.alive = False
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.error = error
            slot.event.set()
        self.transport.close()

    def request(self, payload: Mapping, timeout: "float | None") -> dict:
        rid = payload["id"]
        slot = _ReplySlot()
        with self._lock:
            if not self.alive:
                raise TransportError("connection is dead")
            self._pending[rid] = slot
        try:
            with self._send_lock:
                self.transport.send(payload)
        except TransportError as exc:
            self.fail(exc)
            raise
        if not slot.event.wait(timeout):
            with self._lock:
                self._pending.pop(rid, None)
            raise TransportError(
                f"request {rid} timed out after {timeout} s"
            )
        if slot.error is not None:
            raise slot.error
        assert slot.reply is not None
        return slot.reply

    def close(self) -> None:
        self.fail(TransportError("connection closed by client"))

    def join(self, timeout: "float | None" = None) -> None:
        """Join the reader thread (bounded; a no-op from the reader itself)."""
        if self._reader is not threading.current_thread():
            self._reader.join(timeout)


class RemoteTransport:
    """A supervised client endpoint for one server URL.

    Owns the dial/handshake/reconnect discipline: connections are built
    lazily, verified with a ``hello`` handshake, kept warm by a heartbeat
    thread, and replaced on any failure after an exponential backoff with
    deterministic jitter — the service retry heap's schedule, derived from
    ``(retry_seed, "reconnect-jitter", client_id, attempt)``.  ``call``
    retries :class:`TransportError`\\ s and ``busy`` (backpressure) frames
    with the *same request id*; answers of any other type are returned for
    the caller to interpret.
    """

    def __init__(
        self,
        url: str,
        *,
        connect_timeout: float = 5.0,
        heartbeat_interval: "float | None" = 2.0,
        max_attempts: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        fault_plan: "FaultPlan | None" = None,
        client_id: "str | None" = None,
    ):
        self.url = url
        self.family, self.address = self._parse(url)
        self.connect_timeout = float(connect_timeout)
        self.heartbeat_interval = heartbeat_interval
        self.max_attempts = int(max_attempts)
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.retry_seed = int(retry_seed)
        self.fault_plan = fault_plan
        self.client_id = client_id or uuid.uuid4().hex[:12]
        #: Optional observer of heartbeat replies (``None`` on a failed
        #: ping) — the hook fleet clients use to consume membership
        #: gossip without a second probing thread.
        self.on_pong = None
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._dial_lock = threading.Lock()
        self._conn: "_ClientConnection | None" = None
        self.closed = False
        #: Times a dead connection was replaced with a fresh dial.
        self.reconnects = 0
        #: ``busy`` frames waited out (explicit server backpressure).
        self.backpressure = 0
        #: Requests re-sent with an already-used id after a failure.
        self.resubmits = 0
        self._stop = threading.Event()
        self._heartbeat: "threading.Thread | None" = None
        if heartbeat_interval is not None:
            if heartbeat_interval <= 0:
                raise ValueError(
                    f"heartbeat_interval must be positive or None, got {heartbeat_interval}"
                )
            self._heartbeat = threading.Thread(
                target=self._heartbeat_loop,
                name=f"remote-heartbeat-{self.client_id}",
                daemon=True,
            )
            self._heartbeat.start()

    @staticmethod
    def _parse(url: str) -> "tuple[int, object]":
        if url.startswith("tcp://"):
            rest = url[len("tcp://") :]
            host, _, port = rest.rpartition(":")
            if not host or not port.isdigit():
                raise ValueError(f"malformed tcp URL {url!r}; expected tcp://host:port")
            return socket.AF_INET, (host, int(port))
        if url.startswith("unix://"):
            path = url[len("unix://") :]
            if not path:
                raise ValueError(f"malformed unix URL {url!r}; expected unix://path")
            return socket.AF_UNIX, path
        raise ValueError(
            f"unsupported service URL {url!r}; expected tcp://host:port or unix://path"
        )

    def next_request_id(self) -> str:
        return f"{self.client_id}:{next(self._seq)}"

    def _backoff_delay(self, attempt: int) -> float:
        """The service's backoff discipline, re-derived for reconnects."""
        if self.backoff_base <= 0.0:
            return 0.0
        exponent = min(attempt - 1, 32)
        delay = min(self.backoff_base * (2.0 ** exponent), self.backoff_cap)
        bits = derive_seed(
            self.retry_seed, "reconnect-jitter", self.client_id, str(attempt)
        )
        jitter = 0.5 + (bits % (1 << 20)) / float(1 << 20)
        return delay * jitter

    def _dial(self) -> _ClientConnection:
        sock = socket.socket(self.family, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        try:
            sock.connect(self.address)
            if self.family == socket.AF_INET:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(None)
        except OSError as exc:
            sock.close()
            raise TransportError(f"connect to {self.url} failed: {exc}") from exc
        transport: "FrameTransport | FaultyTransport" = FrameTransport(sock)
        if self.fault_plan is not None:
            transport = FaultyTransport(transport, self.fault_plan)
        connection = _ClientConnection(transport)
        hello = connection.request(
            {"type": "hello", "id": self.next_request_id(), "version": PROTOCOL_VERSION},
            timeout=self.connect_timeout,
        )
        if hello.get("type") == "error":
            connection.close()
            raise RemoteServiceError(hello.get("message", "handshake rejected"))
        if hello.get("type") != "hello" or hello.get("version") != PROTOCOL_VERSION:
            connection.close()
            raise TransportError(f"unexpected handshake reply {hello!r}")
        return connection

    def _ensure_connected(self) -> _ClientConnection:
        # The dial lock serialises concurrent callers so exactly one
        # connection exists per transport — the per-connection inflight
        # bound and backpressure accounting depend on it.
        with self._dial_lock:
            with self._lock:
                if self.closed:
                    raise TransportError(f"transport to {self.url} is closed")
                conn = self._conn
                if conn is not None and conn.alive:
                    return conn
                replacing = conn is not None
            conn = self._dial()
            with self._lock:
                if self.closed:
                    conn.close()
                    raise TransportError(f"transport to {self.url} is closed")
                if replacing:
                    self.reconnects += 1
                self._conn = conn
            return conn

    def call(self, payload: dict, timeout: "float | None" = None) -> dict:
        """Send ``payload`` and return the server's answer, supervising the wire.

        Connection failures and ``busy`` frames are retried up to
        ``max_attempts`` times with backoff, always with the same request
        id — the resubmit-after-reconnect path the service's idempotency
        table exists for.  ``timeout`` bounds the *total* wait.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        last_error: "TransportError | None" = None
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                self.resubmits += 1
                delay = self._backoff_delay(attempt - 1)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    delay = min(delay, remaining)
                if delay > 0:
                    time.sleep(delay)
            try:
                conn = self._ensure_connected()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                reply = conn.request(payload, remaining)
            except RemoteServiceError:
                raise
            except TransportError as exc:
                last_error = exc
                continue
            if reply.get("type") == "busy":
                self.backpressure += 1
                last_error = TransportError("server applied backpressure (busy)")
                continue
            return reply
        message = f"request to {self.url} failed after {self.max_attempts} attempts"
        if deadline is not None and time.monotonic() >= deadline:
            message = f"request to {self.url} timed out after {timeout} s"
        raise TransportError(message) from last_error

    def _heartbeat_loop(self) -> None:
        interval = float(self.heartbeat_interval)
        while not self._stop.wait(interval):
            with self._lock:
                conn = self._conn
            if conn is None or not conn.alive:
                continue  # reconnects are lazy: the next real request dials
            observer = self.on_pong
            try:
                reply = conn.request(
                    {"type": "ping", "id": self.next_request_id()}, timeout=interval
                )
            except TransportError:
                conn.fail(TransportError("heartbeat failed"))
                reply = None
            if observer is not None:
                try:
                    observer(reply)
                except Exception:  # pragma: no cover - observers must not kill pings
                    pass

    def close(self) -> None:
        """Stop the heartbeat, say goodbye, drop the connection (idempotent).

        Both owned threads — the heartbeat and the connection's reader —
        are joined with a bounded timeout, so 100 connect/close cycles
        leave zero lingering threads (the regression the leak test pins).
        """
        with self._lock:
            if self.closed:
                return
            self.closed = True
            conn, self._conn = self._conn, None
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=2.0)
        if conn is not None:
            if conn.alive:
                try:
                    with conn._send_lock:
                        conn.transport.send({"type": "bye"})
                except TransportError:
                    pass
                conn.close()
            conn.join(timeout=2.0)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"RemoteTransport({self.url!r}, {state}, reconnects={self.reconnects})"


class RemoteServiceClient:
    """The full engine surface over a socket: a remote ``ServiceClient``.

    Drop-in for :class:`~repro.runtime.cost_engine.CostEngine` /
    :class:`~repro.runtime.service.ServiceClient` — ``records`` / ``cost``
    / ``batch`` / ``__call__`` plus the ``evaluations`` / ``measured`` /
    ``fallbacks`` counters — where every acquisition becomes one ``submit``
    frame to a :class:`ServiceServer`.  Plans travel as canonical plan
    keys and the machine as its configuration payload, so the server's
    machine hash, record shard and noise-seed derivation match a local
    client's exactly: a remote ``dp_search`` is **bit-identical** to a
    private serial engine.

    ``fallback=True`` arms graceful degradation end-to-end: when the wire
    is down past the reconnect budget, the server is draining, or the
    service answered with a failure, the batch is evaluated through a
    lazily-built private engine — same seeds, bit-identical values —
    and ``fallbacks`` counts the reroutes.
    """

    def __init__(
        self,
        url: "str | RemoteTransport",
        machine: "MachineConfig | SimulatedMachine",
        seed: int = 0,
        objective: "str | Objective" = "cycles",
        fallback: bool = False,
        timeout: "float | None" = None,
        *,
        connect_timeout: float = 5.0,
        heartbeat_interval: "float | None" = 2.0,
        max_attempts: int = 8,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        fault_plan: "FaultPlan | None" = None,
    ):
        self.config = machine.config if isinstance(machine, SimulatedMachine) else machine
        if not isinstance(self.config, MachineConfig):
            raise TypeError(f"cannot interpret {machine!r} as a machine")
        if isinstance(url, RemoteTransport):
            self.transport = url
        else:
            self.transport = RemoteTransport(
                url,
                connect_timeout=connect_timeout,
                heartbeat_interval=heartbeat_interval,
                max_attempts=max_attempts,
                backoff_base=backoff_base,
                backoff_cap=backoff_cap,
                retry_seed=retry_seed,
                fault_plan=fault_plan,
            )
        self.seed = int(seed)
        self.objective = resolve_objective(objective)
        self.fallback = bool(fallback)
        self.timeout = timeout
        self._machine_payload = machine_config_to_wire(self.config)
        #: Plan-cost requests served (cache hits included).
        self.evaluations = 0
        #: Acquisitions the server enqueued on this client's behalf.
        self.measured = 0
        #: Batches the degraded (private-engine) path served.
        self.fallbacks = 0
        self._fallback_engine: "CostEngine | None" = None

    # -- degraded path -----------------------------------------------------------

    def _degraded_engine(self) -> CostEngine:
        """The private engine behind ``fallback=True`` (built on first use).

        Same configuration, same seed, hence the same
        ``derive_seed(seed, "plan-cost", plan_key)`` noise draws and
        bit-identical records.  Its store is a private in-memory one — the
        server's store is across the wire — so degraded batches are cached
        locally for this client's lifetime and nothing is double-written.
        """
        if self._fallback_engine is None:
            self._fallback_engine = CostEngine(
                SimulatedMachine(self.config),
                objective=self.objective,
                backend=BatchedBackend(),
                store=MemoryStore(),
                seed=self.seed,
            )
        return self._fallback_engine

    def _degraded_records(
        self, plans: Sequence[Plan], names: "tuple[str, ...]"
    ) -> "list[CostRecord]":
        engine = self._degraded_engine()
        self.fallbacks += 1
        before = engine.measured
        records = engine.records(list(plans), names)
        self.measured += engine.measured - before
        return records

    # -- engine surface ----------------------------------------------------------

    def records(
        self, plans: Sequence[Plan], metrics: Sequence[str] | None = None
    ) -> "list[CostRecord]":
        """Cost records of ``plans`` in order, via the remote service.

        One submit frame per call, with an idempotent request id: however
        many times the connection dies and the request is resubmitted, the
        service enqueues the work at most once.  With ``fallback`` armed,
        a batch the wire or the service cannot answer is evaluated by the
        private engine instead of raising.
        """
        names = tuple(metrics) if metrics is not None else self.objective.metrics
        self.evaluations += len(plans)
        frame = {
            "type": "submit",
            "id": self.transport.next_request_id(),
            "machine": self._machine_payload,
            "plans": [plan_key(plan) for plan in plans],
            "metrics": list(names),
            "seed": self.seed,
            "deadline": None,
        }
        try:
            reply = self.transport.call(frame, timeout=self.timeout)
        except ServiceError:
            if not self.fallback:
                raise
            return self._degraded_records(plans, names)
        kind = reply.get("type")
        if kind == "result":
            self.measured += int(reply.get("owned", 0))
            return [
                CostRecord(
                    plan_key=record["p"],
                    values={name: float(value) for name, value in record["v"].items()},
                )
                for record in reply["records"]
            ]
        if self.fallback:
            return self._degraded_records(plans, names)
        if kind == "draining":
            raise RemoteServiceError(
                f"{self.transport.url} is draining and refused the submit"
            )
        raise RemoteServiceError(
            reply.get("message", f"unexpected reply type {kind!r}")
        )

    def cost(self, objective: "str | Objective") -> ObjectiveCost:
        """Bind ``objective`` to this client as a drop-in cost function."""
        return ObjectiveCost(self, resolve_objective(objective))

    def batch(self, plans: Sequence[Plan]) -> "list[float]":
        """Default-objective costs of ``plans`` in order."""
        records = self.records(plans)
        value = self.objective.value
        return [value(record.values) for record in records]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    def flush(self) -> None:
        """Compat no-op: the service persists records as they are acquired."""
        return None

    def compact(self) -> None:
        """Compat no-op: shard maintenance belongs to the service's owner."""
        return None

    # -- remote observability ----------------------------------------------------

    def server_stats(self, timeout: "float | None" = 5.0) -> dict:
        """The remote service's headline counters, over the wire."""
        reply = self.transport.call(
            {"type": "stats", "id": self.transport.next_request_id()}, timeout=timeout
        )
        if reply.get("type") != "stats":
            raise RemoteServiceError(reply.get("message", f"unexpected reply {reply!r}"))
        return reply["stats"]

    def server_health(self, timeout: "float | None" = 5.0) -> dict:
        """The remote service's health state (``draining`` while drained)."""
        reply = self.transport.call(
            {"type": "health", "id": self.transport.next_request_id()}, timeout=timeout
        )
        if reply.get("type") != "health":
            raise RemoteServiceError(reply.get("message", f"unexpected reply {reply!r}"))
        return {"state": reply["state"], "detail": reply.get("detail", "")}

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close the transport and the fallback engine's backend (idempotent)."""
        self.transport.close()
        engine, self._fallback_engine = self._fallback_engine, None
        if engine is not None:
            close = getattr(engine.backend, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "RemoteServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RemoteServiceClient({self.transport.url!r}, "
            f"machine={self.config.name!r}, seed={self.seed}, "
            f"{self.measured}/{self.evaluations} measured, "
            f"fallbacks={self.fallbacks})"
        )
