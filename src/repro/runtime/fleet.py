"""Fleet topology: many servers, one record space.

PR 8 put one :class:`~repro.runtime.service.CampaignService` behind a
socket; this module puts **several** behind a single engine surface.  A
:class:`FleetClient` (``Session.connect(["tcp://a", "tcp://b", ...])``)
stripes every submit across the member servers by
``hash(machine_hash, plan_key)`` over a **rendezvous ring** — the same
pure derivation on the client and on every server, so each key has one
well-defined owner at any membership — while all members persist into
one shared record space (a :class:`~repro.runtime.sharded_store.ShardedRecordStore`
directory, whose flock-guarded whole-batch appends make concurrent
writers safe).

Robustness discipline
---------------------

* **Membership.**  A :class:`MembershipRegistry` tracks each member as
  ``healthy`` / ``draining`` / ``partitioned`` / ``dead``.  Members can
  :meth:`join <FleetClient.add_member>` at runtime; ``draining`` and
  death are learned passively from submit outcomes and from membership
  gossip piggybacked on the heartbeat machinery (``pong`` / ``hello``
  replies carry the server's fleet state), or actively via
  :meth:`FleetClient.probe`.
* **Failover.**  On member death or a ``draining`` answer, the failed
  group's keys **rehash over the survivors** and are resubmitted.  A
  group that lands back on the same member (a healed partition) reuses
  its *original request id*, so the server's ticket LRU answers "work
  done, response lost" with the finished ticket — one extra round trip,
  zero duplicate measurements.  A group adopted by a *different*
  survivor cannot be deduped by ids (the dead member's ticket table died
  with it); there the shared record space closes the gap: a
  ``shared_store=True`` service re-reads the store under the machine
  lock before measuring, so everything the dead member persisted is
  served as store hits and only genuinely lost work is re-executed.
* **Ownership handoff.**  A server configured with a :class:`FleetView`
  checks each submit against the ring and **forwards** misdirected keys
  to their current owner (one ``no_forward``-guarded hop), so a client
  with a stale ring view degrades to an extra hop, never a conflict.
  When the owner is unreachable the server adopts the keys locally
  (counted as a ``failover`` in :class:`~repro.runtime.service.ServiceStats`);
  determinism of the measurement values makes even a genuinely
  concurrent double-measure append idempotently, never conflictingly.
* **Chaos.**  The fault plan's ``fleet`` axis injects member-level
  faults at sites ``"fleet-<url>"``, deterministically per seed: a
  ``kill`` decision is permanent member death, an ``error`` decision is
  a **partition** that heals after ``partition_duration`` seconds.  The
  chaos invariant (tests/runtime/test_fleet.py): DP n=14 against a
  3-server fleet with one member SIGKILLed — or partitioned — mid-search
  completes bit-identically to a serial engine with zero duplicate
  measurements and zero conflicting persisted records.
"""

from __future__ import annotations

import threading
import time
import uuid
from typing import Mapping, Sequence

from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.runtime.backends import BatchedBackend
from repro.runtime.cost_engine import CostEngine, ObjectiveCost
from repro.runtime.faults import FaultPlan
from repro.runtime.metrics import CostRecord
from repro.runtime.objectives import Objective, resolve_objective
from repro.runtime.service import ServiceError
from repro.runtime.store import MemoryStore, machine_config_hash
from repro.runtime.transport import (
    RemoteServiceError,
    RemoteTransport,
    TransportError,
    machine_config_to_wire,
)
from repro.util.rng import derive_seed
from repro.wht.encoding import plan_key
from repro.wht.plan import Plan

__all__ = [
    "HEALTHY",
    "DRAINING",
    "PARTITIONED",
    "DEAD",
    "ring_weight",
    "ring_owner",
    "ring_assign",
    "MembershipRegistry",
    "FleetView",
    "FleetClient",
]

#: Membership states.  ``healthy`` members receive striped work;
#: ``draining`` and ``dead`` never do; ``partitioned`` members rejoin
#: the ring when their partition heals.
HEALTHY = "healthy"
DRAINING = "draining"
PARTITIONED = "partitioned"
DEAD = "dead"


# -- the ring ------------------------------------------------------------------


def ring_weight(member: str, machine_hash: str, key: str) -> int:
    """Rendezvous (highest-random-weight) score of ``member`` for one key.

    A pure function of ``(member, machine_hash, plan_key)`` through
    :func:`~repro.util.rng.derive_seed` — no shared state, so the client
    and every server compute identical ownership from the same member
    list, and removing a member moves *only that member's keys*.
    """
    return derive_seed(0, "fleet-ring", member, machine_hash, key)


def ring_owner(members: Sequence[str], machine_hash: str, key: str) -> str:
    """The member owning ``(machine_hash, key)`` under rendezvous hashing."""
    if not members:
        raise ServiceError("fleet has no live members")
    return max(members, key=lambda member: (ring_weight(member, machine_hash, key), member))


def ring_assign(
    members: Sequence[str], machine_hash: str, keys: Sequence[str]
) -> "dict[str, list[str]]":
    """Group ``keys`` by owning member, preserving key order within groups."""
    groups: "dict[str, list[str]]" = {}
    for key in keys:
        groups.setdefault(ring_owner(members, machine_hash, key), []).append(key)
    return groups


# -- membership ----------------------------------------------------------------


class MembershipRegistry:
    """A thread-safe member table: URL -> state, with partition healing.

    The registry is the client-side source of truth for striping:
    :meth:`alive` is the ring's member list.  ``version`` bumps on every
    state change, so observers can detect membership churn cheaply.
    """

    def __init__(self, urls: Sequence[str]):
        members = list(dict.fromkeys(urls))
        if not members:
            raise ValueError("a fleet needs at least one member URL")
        self._lock = threading.Lock()
        self._states: "dict[str, str]" = {url: HEALTHY for url in members}
        #: Monotonic heal deadline per partitioned member.
        self._heals: "dict[str, float]" = {}
        self.version = 0

    def members(self) -> "tuple[str, ...]":
        with self._lock:
            return tuple(self._states)

    def alive(self) -> "tuple[str, ...]":
        """Members currently eligible for striped submits."""
        now = time.monotonic()
        with self._lock:
            healed = [
                url
                for url, deadline in self._heals.items()
                if deadline <= now and self._states.get(url) == PARTITIONED
            ]
            for url in healed:
                del self._heals[url]
                self._states[url] = HEALTHY
                self.version += 1
            return tuple(url for url, state in self._states.items() if state == HEALTHY)

    def state(self, url: str) -> "str | None":
        with self._lock:
            return self._states.get(url)

    def snapshot(self) -> "dict[str, str]":
        with self._lock:
            return dict(self._states)

    def mark(self, url: str, state: str) -> bool:
        """Transition ``url`` to ``state``; dead is terminal.  Returns changed."""
        with self._lock:
            current = self._states.get(url)
            if current is None or current == state or current == DEAD:
                return False
            if current == DRAINING and state == HEALTHY:
                return False  # drain is one-way for striping purposes
            self._states[url] = state
            self._heals.pop(url, None)
            self.version += 1
            return True

    def mark_partitioned(self, url: str, duration: float) -> bool:
        """Mark ``url`` unreachable, healing after ``duration`` seconds."""
        with self._lock:
            current = self._states.get(url)
            if current is None or current in (DEAD, DRAINING):
                return False
            self._states[url] = PARTITIONED
            self._heals[url] = time.monotonic() + float(duration)
            self.version += 1
            return True

    def earliest_heal(self) -> "float | None":
        """Seconds until the next partitioned member heals (None if none will)."""
        now = time.monotonic()
        with self._lock:
            deadlines = [
                deadline
                for url, deadline in self._heals.items()
                if self._states.get(url) == PARTITIONED
            ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now)

    def add(self, url: str) -> bool:
        """A member joins (or rejoins after death) at runtime."""
        with self._lock:
            if self._states.get(url) == HEALTHY:
                return False
            self._states[url] = HEALTHY
            self._heals.pop(url, None)
            self.version += 1
            return True

    def __repr__(self) -> str:
        with self._lock:
            states = dict(self._states)
        return f"MembershipRegistry({states}, version={self.version})"


class FleetView:
    """A *server's* view of the fleet it belongs to (ownership + gossip).

    Attached via :meth:`~repro.runtime.transport.ServiceServer.join_fleet`;
    the server consults :meth:`split` on every submit to forward
    misdirected keys to their current owner, and advertises
    :attr:`state` in its ``hello``/``pong`` replies (the membership
    gossip the client's heartbeat machinery consumes).
    """

    def __init__(self, members: Sequence[str], self_url: str):
        members = list(dict.fromkeys(members))
        if self_url not in members:
            members.append(self_url)
        self.self_url = self_url
        self._lock = threading.Lock()
        self._states: "dict[str, str]" = {url: HEALTHY for url in members}
        #: Lazily-dialed peer transports for owner-forwarding.
        self._peers: "dict[str, RemoteTransport]" = {}
        self.state = "ok"  # advertised in gossip; "draining" once draining

    @property
    def members(self) -> "tuple[str, ...]":
        with self._lock:
            return tuple(self._states)

    def healthy_count(self) -> int:
        with self._lock:
            healthy = sum(1 for state in self._states.values() if state == HEALTHY)
        return healthy

    def mark_peer(self, url: str, state: str) -> None:
        with self._lock:
            if url in self._states and url != self.self_url:
                self._states[url] = state

    def split(
        self, machine_hash: str, keys: Sequence[str]
    ) -> "tuple[list[str], dict[str, list[str]]]":
        """Partition ``keys`` into (locally owned, {peer owner: keys}).

        Keys owned by a peer this view believes dead are adopted locally
        — the caller counts that as a failover — so a server never
        refuses work over membership disagreement.
        """
        with self._lock:
            ring = [url for url, state in self._states.items() if state == HEALTHY]
        if self.self_url not in ring:
            ring.append(self.self_url)
        local: "list[str]" = []
        forwarded: "dict[str, list[str]]" = {}
        for key in keys:
            owner = ring_owner(ring, machine_hash, key)
            if owner == self.self_url:
                local.append(key)
            else:
                forwarded.setdefault(owner, []).append(key)
        return local, forwarded

    def peer_transport(self, url: str) -> RemoteTransport:
        with self._lock:
            transport = self._peers.get(url)
            if transport is None:
                # Forwarding is one best-effort hop: a couple of quick
                # attempts, then the caller adopts the keys locally.
                transport = RemoteTransport(
                    url, max_attempts=2, backoff_base=0.02, backoff_cap=0.2,
                    heartbeat_interval=None, connect_timeout=2.0,
                )
                self._peers[url] = transport
        return transport

    def gossip(self) -> dict:
        """The membership payload piggybacked on hello/pong replies."""
        with self._lock:
            states = dict(self._states)
        return {"self": self.self_url, "state": self.state, "members": states}

    def close(self) -> None:
        with self._lock:
            peers, self._peers = list(self._peers.values()), {}
        for transport in peers:
            transport.close()

    def __repr__(self) -> str:
        return f"FleetView({self.self_url!r}, members={len(self.members)}, state={self.state!r})"


# -- the client ----------------------------------------------------------------


class _GroupFailure(Exception):
    """One striped group failed; its keys rehash over the survivors."""


class FleetClient:
    """The full engine surface over a fleet of :class:`ServiceServer`\\ s.

    Drop-in for :class:`~repro.runtime.cost_engine.CostEngine` — ``records``
    / ``cost`` / ``batch`` / ``__call__`` plus the ``evaluations`` /
    ``measured`` / ``fallbacks`` counters — where every acquisition is
    striped by ``(machine_hash, plan_key)`` over the live members of a
    rendezvous ring.  Values are bit-identical to a private serial engine
    no matter which member measures: plans travel as canonical keys, the
    machine as its exact configuration payload, and noise seeds derive
    per plan on whichever side executes.

    ``fallback=True`` arms graceful degradation: when *no* member can
    answer (all dead or draining past the failover loop), the batch is
    evaluated through a lazily-built private engine — same seeds, same
    values — and ``fallbacks`` counts the reroutes.
    """

    def __init__(
        self,
        urls: Sequence[str],
        machine: "MachineConfig | SimulatedMachine",
        seed: int = 0,
        objective: "str | Objective" = "cycles",
        fallback: bool = False,
        timeout: "float | None" = None,
        *,
        connect_timeout: float = 5.0,
        heartbeat_interval: "float | None" = 2.0,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        retry_seed: int = 0,
        fault_plan: "FaultPlan | None" = None,
        partition_duration: float = 0.25,
        client_id: "str | None" = None,
    ):
        if isinstance(urls, str):
            raise TypeError(
                "FleetClient takes a list of member URLs; "
                "use RemoteServiceClient for a single server"
            )
        self.config = machine.config if isinstance(machine, SimulatedMachine) else machine
        if not isinstance(self.config, MachineConfig):
            raise TypeError(f"cannot interpret {machine!r} as a machine")
        self.registry = MembershipRegistry(urls)
        self.seed = int(seed)
        self.objective = resolve_objective(objective)
        self.fallback = bool(fallback)
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.partition_duration = float(partition_duration)
        self._machine_payload = machine_config_to_wire(self.config)
        self.machine_hash = machine_config_hash(self.config)
        self._transport_options = {
            "connect_timeout": connect_timeout,
            "heartbeat_interval": heartbeat_interval,
            "max_attempts": max_attempts,
            "backoff_base": backoff_base,
            "backoff_cap": backoff_cap,
            "retry_seed": retry_seed,
            "fault_plan": fault_plan,
        }
        self._lock = threading.Lock()
        self._transports: "dict[str, RemoteTransport]" = {}
        #: Consecutive transport failures per member: one failure is a
        #: partition (it may heal), two in a row without a success in
        #: between is death — a SIGKILLed member stops costing rounds.
        self._failures: "dict[str, int]" = {}
        self._seq = 0
        self.client_id = client_id or uuid.uuid4().hex[:12]
        #: Plan-cost requests served (cache hits included).
        self.evaluations = 0
        #: Acquisitions a member enqueued on this client's behalf.
        self.measured = 0
        #: Batches the degraded (private-engine) path served.
        self.fallbacks = 0
        #: Groups rehashed to survivors after a member died or drained.
        self.failovers = 0
        #: Owner-redirect forwards members reported back on results.
        self.redirects = 0
        #: Injected fleet faults (the fault plan's ``fleet`` axis).
        self.injected_kills = 0
        self.injected_partitions = 0
        self.closed = False
        self._fallback_engine: "CostEngine | None" = None
        for url in self.registry.members():
            self._transport_for(url)

    # -- members -------------------------------------------------------------

    def _transport_for(self, url: str) -> RemoteTransport:
        with self._lock:
            transport = self._transports.get(url)
            if transport is None:
                transport = RemoteTransport(url, **self._transport_options)
                transport.on_pong = self._gossip_handler(url)
                self._transports[url] = transport
        return transport

    def _gossip_handler(self, url: str):
        def handle(frame: "dict | None") -> None:
            if frame is None:
                return  # a failed probe; death is decided at submit time
            info = frame.get("fleet")
            draining = bool(frame.get("draining"))
            if isinstance(info, Mapping) and info.get("state") == "draining":
                draining = True
            if draining:
                self.registry.mark(url, DRAINING)

        return handle

    def add_member(self, url: str) -> bool:
        """A member joins the ring at runtime; new keys stripe to it."""
        joined = self.registry.add(url)
        self._transport_for(url)
        return joined

    def probe(self, timeout: float = 2.0) -> "dict[str, str]":
        """Actively health-probe every member (the heartbeat ping, on demand).

        Updates the registry from each reply's gossip: an unreachable
        healthy member is marked partitioned (it may heal), a draining
        reply marks it draining.  Returns the post-probe state map.
        """
        for url in self.registry.members():
            state = self.registry.state(url)
            if state == DEAD:
                continue
            transport = self._transport_for(url)
            try:
                reply = transport.call(
                    {"type": "ping", "id": transport.next_request_id()}, timeout=timeout
                )
            except (TransportError, RemoteServiceError):
                self.registry.mark_partitioned(url, self.partition_duration)
                continue
            with self._lock:
                self._failures[url] = 0
            handler = transport.on_pong
            if handler is not None:
                handler(reply)
        return self.registry.snapshot()

    def next_request_id(self) -> str:
        """Fleet-level request ids: stable across member failover."""
        with self._lock:
            self._seq += 1
            return f"{self.client_id}:f{self._seq}"

    # -- degraded path --------------------------------------------------------

    def _degraded_engine(self) -> CostEngine:
        if self._fallback_engine is None:
            self._fallback_engine = CostEngine(
                SimulatedMachine(self.config),
                objective=self.objective,
                backend=BatchedBackend(),
                store=MemoryStore(),
                seed=self.seed,
            )
        return self._fallback_engine

    def _degraded_records(
        self, plans: Sequence[Plan], names: "tuple[str, ...]"
    ) -> "list[CostRecord]":
        engine = self._degraded_engine()
        self.fallbacks += 1
        before = engine.measured
        records = engine.records(list(plans), names)
        self.measured += engine.measured - before
        return records

    # -- striped submission ---------------------------------------------------

    def _inject(self, url: str) -> None:
        """Consume one fleet fault decision for a submit to ``url``."""
        if self.fault_plan is None:
            return
        decision = self.fault_plan.decide(f"fleet-{url}")
        if decision.delay:
            time.sleep(decision.delay)
        if decision.kill:
            self.injected_kills += 1
            self.registry.mark(url, DEAD)
            raise _GroupFailure(f"injected member kill: {url}")
        if decision.error:
            self.injected_partitions += 1
            self.registry.mark_partitioned(url, self.partition_duration)
            raise _GroupFailure(f"injected member partition: {url}")

    def _submit_group(
        self, url: str, rid: str, keys: Sequence[str], names: "tuple[str, ...]"
    ) -> "dict[str, dict[str, float]]":
        """One striped sub-batch to its owner; raises _GroupFailure to rehash."""
        self._inject(url)
        transport = self._transport_for(url)
        frame = {
            "type": "submit",
            "id": rid,
            "machine": self._machine_payload,
            "plans": list(keys),
            "metrics": list(names),
            "seed": self.seed,
            "deadline": None,
        }
        try:
            reply = transport.call(frame, timeout=self.timeout)
        except RemoteServiceError:
            raise
        except TransportError as exc:
            # The member's reconnect budget is exhausted: the first time,
            # treat it as a partition (it may come back) and rehash its
            # keys now; a repeat without an intervening success is death.
            with self._lock:
                failures = self._failures.get(url, 0) + 1
                self._failures[url] = failures
            if failures >= 2:
                self.registry.mark(url, DEAD)
            else:
                self.registry.mark_partitioned(url, self.partition_duration)
            raise _GroupFailure(f"member {url} unreachable: {exc}") from exc
        with self._lock:
            self._failures[url] = 0
        kind = reply.get("type")
        if kind == "result":
            self.measured += int(reply.get("owned", 0))
            self.redirects += int(reply.get("redirects", 0))
            return {
                record["p"]: {
                    name: float(value) for name, value in record["v"].items()
                }
                for record in reply["records"]
            }
        if kind == "draining":
            self.registry.mark(url, DRAINING)
            raise _GroupFailure(f"member {url} is draining")
        raise RemoteServiceError(
            reply.get("message", f"unexpected reply type {kind!r} from {url}")
        )

    def _acquire(
        self, keys: Sequence[str], names: "tuple[str, ...]"
    ) -> "dict[str, dict[str, float]]":
        """Stripe ``keys`` across the live ring until every key has values.

        Each round assigns the pending keys over the currently-alive
        members and submits the groups concurrently; groups whose member
        died or drained mid-round are rehashed over the survivors in the
        next round.  Request ids are remembered per ``(member, group)``,
        so a group resubmitted to the *same* member (a healed partition)
        reuses its original id and dedupes against the member's ticket
        table; groups adopted by a different member dedupe through the
        shared record space instead.
        """
        pending = list(dict.fromkeys(keys))
        values: "dict[str, dict[str, float]]" = {}
        rids: "dict[tuple[str, tuple[str, ...]], str]" = {}
        while pending:
            members = self.registry.alive()
            if not members:
                heal = self.registry.earliest_heal()
                if heal is None:
                    raise RemoteServiceError(
                        f"no live fleet members (registry: {self.registry.snapshot()})"
                    )
                time.sleep(min(heal + 0.01, self.partition_duration))
                continue
            groups = ring_assign(members, self.machine_hash, pending)
            outcomes: "dict[str, tuple]" = {}

            def run(url: str, keys_for_url: "list[str]") -> None:
                rid_key = (url, tuple(keys_for_url))
                rid = rids.get(rid_key)
                if rid is None:
                    rid = rids[rid_key] = self.next_request_id()
                try:
                    outcomes[url] = ("ok", self._submit_group(url, rid, keys_for_url, names))
                except _GroupFailure as exc:
                    outcomes[url] = ("failed", exc)
                except (RemoteServiceError, ServiceError) as exc:
                    outcomes[url] = ("error", exc)

            if len(groups) == 1:
                ((url, keys_for_url),) = groups.items()
                run(url, keys_for_url)
            else:
                threads = [
                    threading.Thread(
                        target=run, args=(url, keys_for_url), name=f"fleet-submit-{url}"
                    )
                    for url, keys_for_url in groups.items()
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

            still_pending: "list[str]" = []
            for url, keys_for_url in groups.items():
                status, payload = outcomes.get(url, ("failed", None))
                if status == "ok":
                    values.update(payload)
                elif status == "error":
                    raise payload
                else:
                    self.failovers += 1
                    still_pending.extend(keys_for_url)
            pending = still_pending
        return values

    # -- engine surface -------------------------------------------------------

    def records(
        self, plans: Sequence[Plan], metrics: "Sequence[str] | None" = None
    ) -> "list[CostRecord]":
        """Cost records of ``plans`` in order, striped across the fleet."""
        names = tuple(metrics) if metrics is not None else self.objective.metrics
        self.evaluations += len(plans)
        keys = [plan_key(plan) for plan in plans]
        try:
            values = self._acquire(keys, names)
        except (TransportError, RemoteServiceError, ServiceError):
            if not self.fallback:
                raise
            return self._degraded_records(plans, names)
        return [CostRecord(plan_key=key, values=values[key]) for key in keys]

    def cost(self, objective: "str | Objective") -> ObjectiveCost:
        """Bind ``objective`` to this client as a drop-in cost function."""
        return ObjectiveCost(self, resolve_objective(objective))

    def batch(self, plans: Sequence[Plan]) -> "list[float]":
        """Default-objective costs of ``plans`` in order."""
        records = self.records(plans)
        value = self.objective.value
        return [value(record.values) for record in records]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    def flush(self) -> None:
        """Compat no-op: members persist records as they are acquired."""
        return None

    def compact(self) -> None:
        """Compat no-op: shard maintenance belongs to the members."""
        return None

    # -- observability --------------------------------------------------------

    def fleet_stats(self) -> dict:
        """Client-side fleet counters plus the registry snapshot."""
        states = self.registry.snapshot()
        return {
            "members": len(states),
            "members_healthy": sum(1 for s in states.values() if s == HEALTHY),
            "failovers": self.failovers,
            "redirects": self.redirects,
            "injected_kills": self.injected_kills,
            "injected_partitions": self.injected_partitions,
            "states": states,
        }

    def server_stats(self, timeout: "float | None" = 5.0) -> "dict[str, dict]":
        """Each reachable member's service counters, keyed by URL."""
        stats: "dict[str, dict]" = {}
        for url in self.registry.members():
            transport = self._transport_for(url)
            try:
                reply = transport.call(
                    {"type": "stats", "id": transport.next_request_id()},
                    timeout=timeout,
                )
            except (TransportError, RemoteServiceError):
                continue
            if reply.get("type") == "stats":
                stats[url] = reply["stats"]
        return stats

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Close every member transport (joining their threads) — idempotent."""
        self.closed = True
        with self._lock:
            transports, self._transports = list(self._transports.values()), {}
        for transport in transports:
            transport.close()
        engine, self._fallback_engine = self._fallback_engine, None
        if engine is not None:
            close = getattr(engine.backend, "close", None)
            if callable(close):
                close()

    def __enter__(self) -> "FleetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        states = self.registry.snapshot()
        healthy = sum(1 for s in states.values() if s == HEALTHY)
        return (
            f"FleetClient({len(states)} members, {healthy} healthy, "
            f"machine={self.config.name!r}, seed={self.seed}, "
            f"{self.measured}/{self.evaluations} measured, "
            f"failovers={self.failovers})"
        )
