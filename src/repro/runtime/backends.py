"""Pluggable execution backends for measurement campaigns.

A campaign is a list of :class:`WorkUnit`\\ s — ``(plan, noise_seed)`` pairs —
measured against one machine.  Because every unit carries its own noise seed
(derived from the campaign seed and the sample index), the resulting
measurements are independent of execution order and of *where* they execute,
so all backends are guaranteed to produce bit-identical results:

* :class:`SerialBackend` — the reference: one Python loop over the units on
  the caller's machine instance.
* :class:`MultiprocessBackend` — fans the units out across a *persistent*
  pool of worker processes (:mod:`concurrent.futures`); each worker rebuilds
  the machine from its :class:`~repro.machine.machine.MachineConfig` once
  (with a prepared-plan cache that survives across rounds), receives
  *contiguous sub-batches* of units and measures each shard through the
  fused batch-prepare pipeline.  The pool survives across ``measure_units``
  calls so a search's many small candidate rounds don't pay a pool spawn
  each (``close()`` or the context-manager protocol releases the workers).
* :class:`BatchedBackend` — routes the unit list's distinct plans through
  ``machine.prepare_batch``: one fused cross-plan preparation (shared trace
  splicing, one vectorised cache pass per level) instead of one
  prepare/measure round-trip per unit; only the per-unit cycle-noise draw is
  recomputed.  This is the :class:`~repro.runtime.cost_engine.CostEngine`'s
  default execution backend.

Backends receive the *caller's* :class:`SimulatedMachine` so that serial and
batched execution reuse its interpreter and hierarchy (and respect
monkeypatched machines in tests); the multiprocess backend ships only the
picklable configuration to its workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from repro.machine.machine import MachineConfig, PreparedPlan, SimulatedMachine
from repro.machine.measurement import Measurement
from repro.util.validation import check_positive_int
from repro.wht.plan import Plan

__all__ = [
    "WorkUnit",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "BatchedBackend",
    "BACKEND_PRESETS",
    "resolve_backend",
]


@dataclass(frozen=True)
class WorkUnit:
    """One campaign sample: a plan plus the seed of its cycle-noise draw.

    ``noise_seed`` of ``None`` defers to the machine's own generator (not
    reproducible across backends; campaigns always provide explicit seeds).
    """

    plan: Plan
    noise_seed: int | None = None


@runtime_checkable
class ExecutionBackend(Protocol):
    """How and where a list of work units is measured."""

    #: Short identifier used in reports and benchmarks.
    name: str

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> list[Measurement]:
        """Measure every unit against ``machine``, preserving unit order."""
        ...


class SerialBackend:
    """Reference backend: measure units one after another, in order."""

    name = "serial"

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> list[Measurement]:
        return [machine.measure(unit.plan, rng=unit.noise_seed) for unit in units]

    def close(self) -> None:
        """No-op: serial execution holds no external resources.

        Present so wrappers and owners can close any backend uniformly."""
        return None

    def __repr__(self) -> str:
        return "SerialBackend()"


class BatchedBackend:
    """Fuse the whole unit list's preparation into one batched workload.

    The batch's *distinct* plans go through ``machine.prepare_batch`` — the
    cross-plan fused pipeline that walks each plan once, splices the line
    streams into one super-stream and simulates the caches in one vectorised
    pass per level — and every unit then gets its own noise draw via
    ``measure_prepared``.  A batch with a single distinct plan degrades to
    one plain ``machine.prepare`` call.  Since preparation is deterministic
    and the noise seed fully determines the stochastic part, results are
    bit-identical to :class:`SerialBackend`.
    """

    name = "batched"

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> list[Measurement]:
        distinct: dict[Plan, PreparedPlan | None] = {}
        for unit in units:
            distinct.setdefault(unit.plan, None)
        plans = list(distinct)
        if len(plans) == 1:
            distinct[plans[0]] = machine.prepare(plans[0])
        elif plans:
            for plan, prepared in zip(plans, machine.prepare_batch(plans)):
                distinct[plan] = prepared
        return [
            machine.measure_prepared(distinct[unit.plan], rng=unit.noise_seed)
            for unit in units
        ]

    def close(self) -> None:
        """No-op: batched execution holds no external resources."""
        return None

    def __repr__(self) -> str:
        return "BatchedBackend()"


# -- multiprocess worker plumbing -------------------------------------------------
#
# The worker functions live at module scope so every start method (fork,
# forkserver, spawn) can import them.  Each worker process builds its machine
# exactly once from the pickled configuration.

_WORKER_MACHINE: SimulatedMachine | None = None

#: Capacity of each worker's prepared-plan cache: repeated plans across a
#: search's many rounds (or a campaign's duplicate draws) skip re-preparation
#: for the lifetime of the persistent pool.
_WORKER_PREPARED_CAPACITY = 512


def _worker_init(config: MachineConfig) -> None:
    global _WORKER_MACHINE
    from repro.machine.machine import PreparedPlanCache

    _WORKER_MACHINE = SimulatedMachine(
        config, prepared_cache=PreparedPlanCache(_WORKER_PREPARED_CAPACITY)
    )


def _worker_measure_shard(
    payloads: Sequence[tuple[Plan, int | None]],
) -> list[Measurement]:
    """Measure one contiguous sub-batch of units on the worker's machine.

    The shard's plans are prepared through the worker machine's fused batch
    pipeline (sharing its prepared-plan and template caches across rounds,
    since the machine lives as long as the pool), then each unit draws its
    own noise.
    """
    machine = _WORKER_MACHINE
    if machine is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker process was not initialised with a machine config")
    prepared = machine.prepare_batch([plan for plan, _seed in payloads])
    return [
        machine.measure_prepared(prep, rng=seed)
        for prep, (_plan, seed) in zip(prepared, payloads)
    ]


class MultiprocessBackend:
    """Fan units out across a persistent pool of worker processes.

    Workers are handed *contiguous shards* of ``(plan, noise_seed)`` payloads
    and rebuild the machine from the configuration once per process, so one
    round of IPC carries a whole sub-batch in and its measurements out, and
    each shard is prepared through the worker's fused batch pipeline
    (``chunksize`` overrides the shard length).  Result order follows unit
    order regardless of scheduling, and the per-unit seeds make the
    measurements identical to serial execution.

    The :class:`ProcessPoolExecutor` is created lazily on the first batch and
    **kept alive across ``measure_units`` calls**: a search evaluates many
    small candidate rounds (a DP round has at most ~17 candidates), and
    re-spawning a pool per round used to cost more than the round itself.
    The pool is keyed by the machine configuration — measuring against a
    different machine tears the old pool down and starts a fresh one, so
    workers can never hold a stale config.  Call :meth:`close` (or use the
    backend as a context manager, or close the owning
    :class:`~repro.runtime.session.Session`) to release the workers; the
    next batch transparently starts a new pool.
    """

    def __init__(self, max_workers: int | None = None, chunksize: int | None = None):
        if max_workers is not None:
            check_positive_int(max_workers, "max_workers")
        if chunksize is not None:
            check_positive_int(chunksize, "chunksize")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._pool: ProcessPoolExecutor | None = None
        self._pool_config: MachineConfig | None = None

    name = "multiprocess"

    def _effective_workers(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def _pool_for(self, config: MachineConfig) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_config == config:
            return self._pool
        self.close()
        self._pool = ProcessPoolExecutor(
            max_workers=self._effective_workers(),
            initializer=_worker_init,
            initargs=(config,),
        )
        self._pool_config = config
        return self._pool

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> list[Measurement]:
        if not units:
            return []
        workers = self._effective_workers()
        if workers == 1 or len(units) == 1:
            # Nothing to parallelise; skip the pool round-trip entirely
            # (bit-identical by design, thanks to the per-unit seeds).
            return SerialBackend().measure_units(machine, units)
        # Chunk-granular sharding: each worker task is one *contiguous*
        # sub-batch of units, measured through the worker machine's fused
        # batch-prepare pipeline, so cross-plan vectorisation happens inside
        # every shard instead of once per unit.  Four shards per worker keep
        # the load balanced when shard costs vary.
        shard_size = self.chunksize or max(1, -(-len(units) // (workers * 4)))
        payloads = [(unit.plan, unit.noise_seed) for unit in units]
        shards = [
            payloads[low : low + shard_size]
            for low in range(0, len(payloads), shard_size)
        ]
        pool = self._pool_for(machine.config)
        try:
            results = list(pool.map(_worker_measure_shard, shards))
        except BrokenProcessPool:
            # A killed worker poisons the whole executor; drop it and run the
            # batch once more on a fresh pool before giving up.
            self.close()
            pool = self._pool_for(machine.config)
            results = list(pool.map(_worker_measure_shard, shards))
        return [measurement for shard in results for measurement in shard]

    def close(self) -> None:
        """Shut the persistent worker pool down (idempotent).

        The backend remains usable: the next ``measure_units`` call starts a
        fresh pool.
        """
        pool, self._pool, self._pool_config = self._pool, None, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "MultiprocessBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent timing
        try:
            pool = self._pool
            if pool is not None:
                pool.shutdown(wait=False)
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"MultiprocessBackend(max_workers={self.max_workers}, "
            f"chunksize={self.chunksize}, "
            f"pool={'live' if self._pool is not None else 'idle'})"
        )


#: Mapping of backend names accepted by :func:`repro.session` to factories.
BACKEND_PRESETS = {
    "serial": SerialBackend,
    "multiprocess": MultiprocessBackend,
    "batched": BatchedBackend,
}


def resolve_backend(spec: "str | ExecutionBackend") -> ExecutionBackend:
    """Normalise a backend name or instance into an :class:`ExecutionBackend`."""
    if isinstance(spec, str):
        try:
            return BACKEND_PRESETS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown backend {spec!r}; available: {sorted(BACKEND_PRESETS)}"
            ) from None
    if isinstance(spec, ExecutionBackend):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as an execution backend")
