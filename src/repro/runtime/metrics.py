"""First-class cost metrics: the registry behind the multi-metric cost API.

The paper's central observation is that *different* cost functions — measured
cycles, instruction counts, cache-miss models, and the combined
``alpha * I + beta * M`` model — rank WHT plans differently.  The runtime
therefore treats the cost quantity itself as data: a :class:`MetricSpec`
describes one named metric (how it is obtained and from which *channel*), and
the registry maps metric names to specs so every consumer — the cost engine,
the search objectives, the figures — selects metrics uniformly by name.

Metrics come in two kinds:

* **hardware** metrics are read off one simulated execution.  All metrics on
  the ``"counters"`` channel (``cycles``, ``instructions``, ``l1_misses``,
  ``l2_misses``, ``l1_accesses``) are extracted from a single
  :class:`~repro.machine.measurement.Measurement` — one PAPI-style run
  populates every one of them at once, which is what makes requesting a new
  counter metric on an already-measured plan free.  ``wall_time`` lives on
  its own ``"wall"`` channel because it requires actually executing the plan
  in Python rather than reading the simulator's counters.
* **model** metrics are computed analytically from the plan structure alone
  (no execution, no simulation), backed by the vectorised batch models:
  ``model_instructions``, ``model_l1_misses`` and the paper's default
  combined model ``model_combined``.  Their scorers are built per machine
  configuration so the instruction weights and the L1 geometry match the
  machine being studied.

:class:`CostRecord` is the unit the engine trades in: one plan's values for
any subset of metrics.  Records are merged per plan in the engine's cache and
in the append-log store, so the set of known metrics for a plan grows
monotonically without ever re-measuring what is already known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.machine.measurement import Measurement
from repro.models.cache_misses import CacheMissModel
from repro.models.combined import CombinedModel
from repro.models.instruction_count import InstructionCountModel
from repro.wht.encoding import MAX_ENCODABLE_EXPONENT, EncodedPlans, encode_plans
from repro.wht.plan import Plan

__all__ = [
    "COUNTER_CHANNEL",
    "WALL_CHANNEL",
    "MODEL_CHANNEL",
    "MetricSpec",
    "CostRecord",
    "WallTimePolicy",
    "DEFAULT_WALL_TIME_POLICY",
    "set_wall_time_policy",
    "register_metric",
    "metric_spec",
    "available_metrics",
    "hardware_metric_names",
    "counter_metric_names",
    "counter_values",
    "has_counter_values",
    "model_metric_names",
]

#: Channel of every metric extracted from one simulated (PAPI-style) run.
COUNTER_CHANNEL = "counters"
#: Channel of metrics requiring an actual Python execution of the plan.
WALL_CHANNEL = "wall"
#: Channel of analytic model metrics (no execution of any kind).
MODEL_CHANNEL = "model"

#: Scorer signature: plans (or an already-shared :class:`EncodedPlans`) in,
#: one float value per plan out.  Accepting an encoding lets the engine
#: encode a batch once and feed every model metric from it.
BatchScorer = Callable[["Sequence[Plan] | EncodedPlans"], "np.ndarray | list[float]"]


@dataclass(frozen=True)
class MetricSpec:
    """Description of one named cost metric.

    Exactly one acquisition mechanism is set, matching ``channel``:

    * ``from_measurement`` for :data:`COUNTER_CHANNEL` metrics (a pure read
      of one :class:`Measurement` field);
    * ``measure`` for :data:`WALL_CHANNEL` metrics (runs the plan);
    * ``scorer_factory`` for :data:`MODEL_CHANNEL` metrics (builds the
      vectorised batch scorer for one machine configuration).
    """

    name: str
    #: ``"hardware"`` (read off an execution) or ``"model"`` (analytic).
    kind: str
    #: Which acquisition channel populates the metric.
    channel: str
    description: str
    from_measurement: Callable[[Measurement], float] | None = None
    measure: Callable[[SimulatedMachine, Plan], float] | None = None
    scorer_factory: Callable[[MachineConfig], BatchScorer] | None = None
    #: Whether repeated acquisition yields identical values (wall time does
    #: not; everything else is deterministic given the engine's noise seed).
    deterministic: bool = True
    #: Optional acquisition policy carried alongside the metric (e.g. the
    #: ``wall_time`` metric's :class:`WallTimePolicy`), recorded so consumers
    #: can see *how* stored values were obtained.
    policy: object | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("hardware", "model"):
            raise ValueError(f"metric kind must be 'hardware' or 'model', got {self.kind!r}")
        mechanisms = {
            COUNTER_CHANNEL: self.from_measurement,
            WALL_CHANNEL: self.measure,
            MODEL_CHANNEL: self.scorer_factory,
        }
        if self.channel not in mechanisms:
            raise ValueError(
                f"unknown metric channel {self.channel!r}; "
                f"available: {sorted(mechanisms)}"
            )
        if mechanisms[self.channel] is None:
            raise ValueError(
                f"metric {self.name!r} on channel {self.channel!r} is missing "
                "its acquisition function"
            )


@dataclass(frozen=True)
class CostRecord:
    """One plan's values for some set of metrics.

    ``values`` maps metric names to floats; records for the same plan merge
    (new metrics extend the record, re-measured metrics overwrite with
    identical values by construction).  The record behaves like a read-only
    mapping for the metrics it carries.
    """

    plan_key: str
    values: Mapping[str, float] = field(default_factory=dict)

    def __getitem__(self, metric: str) -> float:
        try:
            return self.values[metric]
        except KeyError:
            raise KeyError(
                f"record for {self.plan_key!r} has no metric {metric!r}; "
                f"known: {sorted(self.values)}"
            ) from None

    def __contains__(self, metric: str) -> bool:
        return metric in self.values

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def metrics(self) -> tuple[str, ...]:
        """Names of the metrics this record carries."""
        return tuple(self.values)


# -- registry -------------------------------------------------------------------

_REGISTRY: dict[str, MetricSpec] = {}


def register_metric(spec: MetricSpec, replace: bool = False) -> MetricSpec:
    """Add ``spec`` to the registry (``replace=True`` to overwrite)."""
    if spec.name in _REGISTRY and not replace:
        raise ValueError(f"metric {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def metric_spec(name: str) -> MetricSpec:
    """The registered spec for ``name`` (raises ``KeyError`` with the options)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> tuple[str, ...]:
    """Every registered metric name, sorted."""
    return tuple(sorted(_REGISTRY))


def hardware_metric_names() -> tuple[str, ...]:
    """Names of the hardware metrics, in registration order."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.kind == "hardware")


def counter_metric_names() -> tuple[str, ...]:
    """Names of the metrics one ``measure`` call populates, in registration order."""
    return tuple(
        name for name, spec in _REGISTRY.items() if spec.channel == COUNTER_CHANNEL
    )


def counter_values(measurement: Measurement) -> dict[str, float]:
    """Every counter-channel metric of one measurement, by name.

    This is the "one PAPI run populates every counter at once" extraction
    shared by the cost engine and the campaign service: acquiring *any*
    counter metric stores *all* of them.
    """
    values = {}
    for name, spec in _REGISTRY.items():
        if spec.channel == COUNTER_CHANNEL:
            values[name] = float(spec.from_measurement(measurement))
    return values


def has_counter_values(values: "Mapping[str, float]") -> bool:
    """Whether a record already carries the whole counter channel.

    The idempotence check behind the service's retry discipline: a retried
    counter task re-measures a plan only if some counter metric is missing
    from its record — a record fully populated by an earlier attempt (whose
    store append raised *after* the bytes landed) is served as-is, so no
    retry can persist conflicting values.
    """
    return all(name in values for name in counter_metric_names())


def model_metric_names() -> tuple[str, ...]:
    """Names of the analytic model metrics, in registration order."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.kind == "model")


def nondeterministic_metric_names() -> tuple[str, ...]:
    """Names of the metrics whose repeated acquisition varies (wall time).

    The cost engine keeps these out of the persistent record store: a
    wall-clock number measured on one host must not be served as a cache
    hit on another.
    """
    return tuple(name for name, spec in _REGISTRY.items() if not spec.deterministic)


# -- built-in hardware metrics ---------------------------------------------------

register_metric(
    MetricSpec(
        name="cycles",
        kind="hardware",
        channel=COUNTER_CHANNEL,
        description="Simulated cycle count (the paper's PAPI_TOT_CYC)",
        from_measurement=lambda m: float(m.cycles),
    )
)
register_metric(
    MetricSpec(
        name="instructions",
        kind="hardware",
        channel=COUNTER_CHANNEL,
        description="Retired instructions (the paper's PAPI_TOT_INS)",
        from_measurement=lambda m: float(m.instructions),
    )
)
register_metric(
    MetricSpec(
        name="l1_misses",
        kind="hardware",
        channel=COUNTER_CHANNEL,
        description="L1 data-cache misses (the paper's PAPI_L1_DCM)",
        from_measurement=lambda m: float(m.l1_misses),
    )
)
register_metric(
    MetricSpec(
        name="l2_misses",
        kind="hardware",
        channel=COUNTER_CHANNEL,
        description="L2 data-cache misses (the paper's PAPI_L2_DCM)",
        from_measurement=lambda m: float(m.l2_misses),
    )
)
register_metric(
    MetricSpec(
        name="l1_accesses",
        kind="hardware",
        channel=COUNTER_CHANNEL,
        description="L1 data-cache accesses (loads + stores reaching the cache)",
        from_measurement=lambda m: float(m.l1_accesses),
    )
)
@dataclass(frozen=True)
class WallTimePolicy:
    """Acquisition policy of the ``wall_time`` metric (see DESIGN.md §9).

    Wall time is inherently non-deterministic, so a single run is whatever
    the scheduler made of it.  The policy runs the plan ``repetitions``
    times, drops ``trim_fraction`` of the sorted timings from *each* end and
    stores the mean of the rest — a trimmed mean that damps one-sided
    scheduler outliers, which is what makes wall-time records collected on
    different hosts comparable in shape (never in absolute value; the engine
    still refuses to serve another host's wall time from the store).
    """

    repetitions: int = 5
    trim_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError(f"repetitions must be >= 1, got {self.repetitions}")
        if not 0.0 <= self.trim_fraction < 0.5:
            raise ValueError(
                f"trim_fraction must lie in [0, 0.5), got {self.trim_fraction}"
            )

    def measure(self, machine: SimulatedMachine, plan: Plan) -> float:
        """Trimmed-mean wall time of ``plan`` on ``machine`` under the policy."""
        return float(
            machine.measure_wall_time(
                plan,
                repetitions=self.repetitions,
                trim_fraction=self.trim_fraction,
            )
        )


#: The default policy the registered ``wall_time`` metric acquires under.
DEFAULT_WALL_TIME_POLICY = WallTimePolicy()


def set_wall_time_policy(policy: WallTimePolicy) -> MetricSpec:
    """Re-register the ``wall_time`` metric under a different policy.

    Engines pick the new policy up on their next wall-channel acquisition
    (already-cached values in an engine's memory are kept for its lifetime;
    wall time is never persisted, so no stale policy can leak from a store).
    """
    if not isinstance(policy, WallTimePolicy):
        raise TypeError(f"expected a WallTimePolicy, got {policy!r}")
    return register_metric(_wall_time_spec(policy), replace=True)


def _wall_time_spec(policy: WallTimePolicy) -> MetricSpec:
    return MetricSpec(
        name="wall_time",
        kind="hardware",
        channel=WALL_CHANNEL,
        description=(
            f"Trimmed-mean wall-clock seconds of executing the plan "
            f"({policy.repetitions} repetitions, {policy.trim_fraction:.0%} "
            f"trimmed from each end)"
        ),
        measure=policy.measure,
        deterministic=False,
        policy=policy,
    )


register_metric(_wall_time_spec(DEFAULT_WALL_TIME_POLICY))


# -- built-in model metrics ------------------------------------------------------


def _batchable(plans: Sequence[Plan]) -> bool:
    return all(plan.n <= MAX_ENCODABLE_EXPONENT for plan in plans)


def _instruction_scorer(config: MachineConfig) -> BatchScorer:
    model = InstructionCountModel(config.instruction_model)

    def score(plans: "Sequence[Plan] | EncodedPlans") -> "np.ndarray | list[float]":
        if isinstance(plans, EncodedPlans):
            return model.count_batch(plans).astype(float)
        if not _batchable(plans):
            return [float(model.count(plan)) for plan in plans]
        return model.count_batch(plans).astype(float)

    return score


def _miss_scorer(config: MachineConfig) -> BatchScorer:
    model = CacheMissModel.from_machine_config(config, level="l1")

    def score(plans: "Sequence[Plan] | EncodedPlans") -> "np.ndarray | list[float]":
        if isinstance(plans, EncodedPlans):
            return model.misses_batch(plans).astype(float)
        if not _batchable(plans):
            return [float(model.misses(plan)) for plan in plans]
        return model.misses_batch(plans).astype(float)

    return score


def _combined_scorer(config: MachineConfig) -> BatchScorer:
    instruction_model = InstructionCountModel(config.instruction_model)
    miss_model = CacheMissModel.from_machine_config(config, level="l1")
    combined = CombinedModel()

    def score(plans: "Sequence[Plan] | EncodedPlans") -> "np.ndarray | list[float]":
        if not isinstance(plans, EncodedPlans):
            if not _batchable(plans):
                return [
                    combined.value(
                        instruction_model.count(plan), miss_model.misses(plan)
                    )
                    for plan in plans
                ]
            plans = encode_plans(plans)
        return combined.values(
            instruction_model.count_batch(plans).astype(float),
            miss_model.misses_batch(plans).astype(float),
        )

    return score


register_metric(
    MetricSpec(
        name="model_instructions",
        kind="model",
        channel=MODEL_CHANNEL,
        description="Analytic instruction-count model (machine's weights)",
        scorer_factory=_instruction_scorer,
    )
)
register_metric(
    MetricSpec(
        name="model_l1_misses",
        kind="model",
        channel=MODEL_CHANNEL,
        description="Analytic L1 cache-miss model (machine's L1 geometry)",
        scorer_factory=_miss_scorer,
    )
)
register_metric(
    MetricSpec(
        name="model_combined",
        kind="model",
        channel=MODEL_CHANNEL,
        description="The paper's default combined model 1.00*I + 0.05*M (analytic)",
        scorer_factory=_combined_scorer,
    )
)
