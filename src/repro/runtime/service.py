"""The multi-tenant campaign service: job queue, worker fleet, shared store.

Everything below the session layer is already order-independent (per-plan
noise seeds), batched (``prepare_batch``) and durable (append-log record
stores) — but one :class:`~repro.runtime.session.Session` is still one
process serving one caller.  Run the paper's measurement campaigns from many
figure scripts, searches and sweeps at once and each opens its own store,
races the others' appends and re-measures work a sibling finished seconds
ago.  :class:`CampaignService` closes that gap: **one** process-wide owner of
the measurement pipeline that any number of sessions submit work to.

Architecture
------------

* **Job queue.**  Clients submit :class:`CampaignJob`\\ s — ``(machine
  configuration, plan batch, metrics, seed)`` work units.  ``submit``
  partitions a job by acquisition channel, serves whatever the shared record
  cache already knows, attaches to any identical work already in flight, and
  enqueues only the remainder.  The returned :class:`JobTicket` blocks until
  every record the job needs exists.
* **Dedup.**  Work is identified by ``(machine_hash, plan_key, seed,
  channel)``.  However many sessions ask for a plan's cost concurrently,
  exactly one real measurement happens: the first submitter enqueues it,
  everyone else waits on the same in-flight entry.  (Raw measurement batches
  — campaign tables — dedupe the same way on ``(machine_hash, plan_key,
  noise_seed)`` through :meth:`CampaignService.measure_units`.)
* **Worker fleet.**  Daemon threads drain the queue through the service's
  :class:`~repro.runtime.backends.ExecutionBackend` — the fused
  :class:`~repro.runtime.backends.BatchedBackend` by default, a
  :class:`~repro.runtime.backends.MultiprocessBackend` for process fan-out;
  the protocol leaves room for a socket/multi-host backend later.  All real
  work routes through ``prepare_batch``; per-machine execution is serialised
  so simulator state is never shared across threads.  A failing task is
  retried (fresh machine state) and only marked failed — never silently
  dropped — after ``max_attempts``.
* **Sharded record log.**  Results persist in the service's store —
  :class:`~repro.runtime.sharded_store.ShardedRecordStore` for a directory
  spec: one append-log writer per ``(machine_hash, seed)`` shard, lock-free
  readers, background compaction.  Records are appended *before* waiters are
  released, so no value a client observed can be lost by a crash.
* **Clients.**  :meth:`CampaignService.client` returns a
  :class:`ServiceClient` — a drop-in for
  :class:`~repro.runtime.cost_engine.CostEngine` (``records`` / ``cost`` /
  ``batch`` / the ``evaluations``/``measured`` counters) whose acquisitions
  all route through the service.  ``Session.connect(service=...)`` builds a
  whole session on top; :func:`repro.serve` is the one-line constructor.
* **Observability.**  :meth:`CampaignService.stats` reports queue depth,
  in-flight units, dedup savings, store hits vs real measurements, retries,
  failures and per-shard sizes.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.machine.machine import MachineConfig, PreparedPlanCache, SimulatedMachine
from repro.machine.measurement import Measurement
from repro.runtime.backends import BatchedBackend, ExecutionBackend, WorkUnit
from repro.runtime.cost_engine import ObjectiveCost
from repro.runtime.metrics import (
    COUNTER_CHANNEL,
    MODEL_CHANNEL,
    WALL_CHANNEL,
    CostRecord,
    counter_values,
    metric_spec,
    nondeterministic_metric_names,
)
from repro.runtime.objectives import Objective, resolve_objective
from repro.runtime.sharded_store import ShardedRecordStore, ShardStats
from repro.runtime.store import (
    CampaignKey,
    CampaignStore,
    CostLogKey,
    CostRecords,
    MemoryStore,
    machine_config_hash,
    resolve_store,
)
from repro.runtime.table import MeasurementTable
from repro.util.lru import LRUCache
from repro.util.rng import derive_seed
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.plan import Plan

__all__ = [
    "CampaignJob",
    "JobTicket",
    "ServiceError",
    "ServiceStats",
    "CampaignService",
    "ServiceClient",
    "ServiceBackend",
    "ServiceStoreView",
    "serve",
]


class ServiceError(RuntimeError):
    """A campaign service request failed (worker failure after retries,
    shutdown while waiting, or a timeout)."""


@dataclass(frozen=True)
class CampaignJob:
    """One unit of service work: a plan batch to evaluate on one machine.

    ``metrics`` name what must be known for every plan of ``plan_batch``;
    ``seed`` is the noise-derivation seed (the same meaning as
    :class:`~repro.runtime.cost_engine.CostEngine`'s ``seed`` — it selects
    the record shard and pins each plan's noise draw).  ``scale`` is a free
    informational tag (e.g. the submitting session's scale name) carried
    into reports.
    """

    machine_config: MachineConfig
    plan_batch: "tuple[Plan, ...]"
    metrics: "tuple[str, ...]" = ("cycles",)
    seed: int = 0
    scale: str | None = None

    def __post_init__(self) -> None:
        if not self.plan_batch:
            raise ValueError("a CampaignJob needs at least one plan")
        if not self.metrics:
            raise ValueError("a CampaignJob needs at least one metric")


class _Inflight:
    """One pending acquisition every interested waiter blocks on."""

    __slots__ = ("event", "error", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.error: BaseException | None = None
        self.value: object | None = None


@dataclass
class _Task:
    """One queued batch of real work for the worker fleet."""

    channel: str  # COUNTER_CHANNEL | WALL_CHANNEL | MODEL_CHANNEL | "measure"
    config: MachineConfig
    log_key: CostLogKey
    #: plan key -> plan for record channels; unused for "measure".
    plan_by_key: "dict[str, Plan]" = field(default_factory=dict)
    #: wall/model channels: the one metric this task acquires.
    metric: str | None = None
    #: "measure" channel: (dedup key, unit) payloads.
    payloads: "list[tuple[tuple, WorkUnit]]" = field(default_factory=list)
    attempts: int = 0


class JobTicket:
    """Handle on one submitted :class:`CampaignJob`.

    ``result()`` blocks until every record the job needs exists and returns
    one :class:`~repro.runtime.metrics.CostRecord` per plan, in job order.
    ``owned_units`` counts the acquisitions *this* submission enqueued (as
    opposed to records served from the store or attached to another
    submitter's in-flight work) — the client-side measurement counter.
    """

    def __init__(
        self,
        service: "CampaignService",
        job: CampaignJob,
        log_key: CostLogKey,
        plan_keys: "list[str]",
        metric_names: "tuple[str, ...]",
        waits: "list[_Inflight]",
        owned_units: int,
    ):
        self._service = service
        self.job = job
        self._log_key = log_key
        self._plan_keys = plan_keys
        self._metric_names = metric_names
        self._waits = waits
        self.owned_units = owned_units

    def done(self) -> bool:
        """Whether every acquisition this job depends on has finished."""
        return all(entry.event.is_set() for entry in self._waits)

    def result(self, timeout: float | None = None) -> "list[CostRecord]":
        """Block until the job's records exist, then return them in order."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for entry in self._waits:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                remaining = 0.0
            if not entry.event.wait(remaining):
                raise ServiceError(
                    f"timed out after {timeout} s waiting for campaign work"
                )
            if entry.error is not None:
                raise ServiceError(
                    "campaign work failed after retries"
                ) from entry.error
        return self._service._assemble(self._log_key, self._plan_keys, self._metric_names)

    def __repr__(self) -> str:
        state = "done" if self.done() else f"waiting on {len(self._waits)}"
        return f"JobTicket({len(self._plan_keys)} plans, {state})"


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of a service's counters and store occupancy."""

    #: Jobs accepted by ``submit`` (not counting raw ``measure_units`` batches).
    jobs: int
    #: Tasks waiting in the queue right now.
    queue_depth: int
    #: Acquisitions currently in flight (enqueued or executing).
    in_flight: int
    #: Per-(plan, metric) requests served straight from the record cache
    #: (which is read-through from the store).
    store_hits: int
    #: Requests that attached to work another submitter already had in
    #: flight — each one a duplicate measurement that never happened.
    dedup_savings: int
    #: Real measurements executed (one per distinct plan per shard).
    measured: int
    #: Plans evaluated through the analytic model scorers (no machine).
    model_evaluations: int
    #: Wall-channel executions.
    wall_evaluations: int
    #: Tasks re-enqueued after a worker failure.
    retries: int
    #: Tasks abandoned after exhausting their attempts.
    failures: int
    #: Size of the worker fleet.
    workers: int
    #: Per-shard occupancy, when the store exposes it (sharded stores do).
    shards: "tuple[ShardStats, ...]" = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"jobs={self.jobs} queue={self.queue_depth} inflight={self.in_flight} "
            f"store_hits={self.store_hits} dedup={self.dedup_savings} "
            f"measured={self.measured} retries={self.retries} "
            f"failures={self.failures} shards={len(self.shards)}"
        )


def _resolve_service_store(spec: "str | os.PathLike[str] | CampaignStore | None") -> CampaignStore:
    """Service store resolution: directory specs become *sharded* stores.

    ``None`` gives the service a private in-memory store (the read-through
    cache still works; nothing survives the process).  A path spec becomes a
    :class:`ShardedRecordStore` — the service is long-lived and multi-tenant,
    exactly what sharding is for — while explicit store instances and the
    ``"memory"``/``"none"`` presets resolve exactly as
    :func:`~repro.runtime.store.resolve_store` resolves them (including the
    bare-string rejection: a typo cannot silently change semantics).
    """
    if spec is None:
        return MemoryStore()
    if isinstance(spec, str):
        if spec in ("memory", "none"):
            return resolve_store(spec)
        if os.sep in spec or (os.altsep is not None and os.altsep in spec):
            return ShardedRecordStore(spec)
        return resolve_store(spec)  # raises the canonical bare-string error
    if isinstance(spec, os.PathLike):
        return ShardedRecordStore(spec)
    return resolve_store(spec)


class CampaignService:
    """One process-wide owner of measurement work for many client sessions.

    Parameters
    ----------
    store:
        Where records and campaign tables persist.  ``None`` — a private
        in-memory store; a directory path — a :class:`ShardedRecordStore`
        rooted there; any :class:`~repro.runtime.store.CampaignStore`
        instance passes through.  The service treats itself as the store's
        **single writer** for record logs; client sessions read through it.
    backend:
        How queued work executes (default: the fused
        :class:`~repro.runtime.backends.BatchedBackend`).
    workers:
        Worker-fleet size.  Execution on one machine configuration is
        serialised (simulator state is not shared across threads), so extra
        workers buy overlap across *different* machines/shards and keep the
        queue moving while one batch simulates.
    max_attempts:
        Total tries per task before its waiters receive the failure.
    """

    def __init__(
        self,
        store: "str | CampaignStore | None" = None,
        backend: ExecutionBackend | None = None,
        workers: int = 2,
        max_attempts: int = 3,
        measurement_memo: int = 8192,
        name: str = "campaign-service",
    ):
        check_positive_int(workers, "workers")
        check_positive_int(max_attempts, "max_attempts")
        self.name = name
        self._owns_store = not isinstance(store, CampaignStore)
        self.store = _resolve_service_store(store)
        self.backend = backend if backend is not None else BatchedBackend()
        self.max_attempts = int(max_attempts)
        self._lock = threading.RLock()
        self._queue: "queue.Queue[_Task | None]" = queue.Queue()
        #: Authoritative record cache per shard, read-through from the store.
        #: Coherent because this service is the store's single record writer.
        self._records: "dict[CostLogKey, CostRecords]" = {}
        #: Wall-channel values: volatile, never persisted (host-specific).
        self._wall: "dict[tuple[CostLogKey, str, str], float]" = {}
        #: (machine_hash, plan_key, seed, channel[, metric]) -> pending work.
        self._inflight: "dict[tuple, _Inflight]" = {}
        #: Raw-measurement dedup: (machine_hash, plan_key, noise_seed).
        self._measure_inflight: "dict[tuple, _Inflight]" = {}
        self._measure_memo: "LRUCache[tuple, Measurement]" = LRUCache(measurement_memo)
        self._machines: "dict[str, SimulatedMachine]" = {}
        self._machine_locks: "dict[str, threading.Lock]" = {}
        self._hashes: "dict[MachineConfig, str]" = {}
        self._scorers: "dict[tuple[str, str], object]" = {}
        self._counters = {
            "jobs": 0,
            "store_hits": 0,
            "dedup_savings": 0,
            "measured": 0,
            "model_evaluations": 0,
            "wall_evaluations": 0,
            "retries": 0,
            "failures": 0,
        }
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{index}", daemon=True
            )
            for index in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()

    # -- resolution helpers ------------------------------------------------------

    def _hash_for(self, config: MachineConfig) -> str:
        digest = self._hashes.get(config)
        if digest is None:
            digest = machine_config_hash(config)
            self._hashes[config] = digest
        return digest

    def _machine_for(self, config: MachineConfig) -> SimulatedMachine:
        digest = self._hash_for(config)
        with self._lock:
            machine = self._machines.get(digest)
            if machine is None:
                machine = SimulatedMachine(
                    config, prepared_cache=PreparedPlanCache(512)
                )
                self._machines[digest] = machine
                self._machine_locks[digest] = threading.Lock()
            return machine

    def _machine_lock(self, digest: str) -> threading.Lock:
        with self._lock:
            return self._machine_locks.setdefault(digest, threading.Lock())

    def _cache_for(self, log_key: CostLogKey) -> CostRecords:
        """The shard's record cache, seeded from the store on first touch."""
        cache = self._records.get(log_key)
        if cache is None:
            cache = self.store.get_cost_records(log_key)
            volatile = nondeterministic_metric_names()
            if volatile:
                for record in cache.values():
                    for metric in volatile:
                        record.pop(metric, None)
            self._records[log_key] = cache
        return cache

    def _scorer(self, digest: str, metric: str, config: MachineConfig):
        scorer = self._scorers.get((digest, metric))
        if scorer is None:
            scorer = metric_spec(metric).scorer_factory(config)
            self._scorers[(digest, metric)] = scorer
        return scorer

    # -- submission --------------------------------------------------------------

    def submit(self, job: CampaignJob) -> JobTicket:
        """Accept ``job``, enqueue only its genuinely missing work.

        Partitioning happens under the service lock: every requested
        ``(plan, metric)`` is classified as a record-cache hit, an
        attachment to in-flight work, or new work this submission owns —
        which is what makes "exactly one real measurement per distinct
        ``(machine_hash, plan_key, seed, channel)``" hold under any number
        of concurrent submitters.
        """
        specs = [metric_spec(name) for name in job.metrics]
        plans = list(job.plan_batch)
        keys = [plan_key(plan) for plan in plans]
        digest = self._hash_for(job.machine_config)
        log_key = CostLogKey(machine_hash=digest, seed=int(job.seed))

        waits: "list[_Inflight]" = []
        seen_inflight: "set[tuple]" = set()
        owned = 0
        counter_missing: "dict[str, Plan]" = {}
        wall_missing: "dict[str, dict[str, Plan]]" = {}
        model_missing: "dict[str, dict[str, Plan]]" = {}

        def classify(inflight_key: tuple, missing: "dict[str, Plan]", key: str, plan: Plan) -> None:
            nonlocal owned
            if inflight_key in seen_inflight:
                return
            seen_inflight.add(inflight_key)
            entry = self._inflight.get(inflight_key)
            if entry is not None:
                self._counters["dedup_savings"] += 1
                waits.append(entry)
                return
            entry = _Inflight()
            self._inflight[inflight_key] = entry
            waits.append(entry)
            owned += 1
            missing[key] = plan

        with self._lock:
            if self._closed:
                raise ServiceError(f"{self.name} is shut down")
            self._counters["jobs"] += 1
            records = self._cache_for(log_key)
            for key, plan in zip(keys, plans):
                record = records.get(key)
                for spec in specs:
                    if spec.channel == WALL_CHANNEL:
                        if (log_key, key, spec.name) in self._wall:
                            self._counters["store_hits"] += 1
                            continue
                        classify(
                            (digest, key, log_key.seed, WALL_CHANNEL, spec.name),
                            wall_missing.setdefault(spec.name, {}),
                            key,
                            plan,
                        )
                        continue
                    if record is not None and spec.name in record:
                        self._counters["store_hits"] += 1
                        continue
                    if spec.channel == COUNTER_CHANNEL:
                        classify(
                            (digest, key, log_key.seed, COUNTER_CHANNEL),
                            counter_missing,
                            key,
                            plan,
                        )
                    else:
                        classify(
                            (digest, key, log_key.seed, MODEL_CHANNEL, spec.name),
                            model_missing.setdefault(spec.name, {}),
                            key,
                            plan,
                        )

        if counter_missing:
            self._queue.put(
                _Task(COUNTER_CHANNEL, job.machine_config, log_key, counter_missing)
            )
        for metric, missing in model_missing.items():
            self._queue.put(
                _Task(MODEL_CHANNEL, job.machine_config, log_key, missing, metric=metric)
            )
        for metric, missing in wall_missing.items():
            self._queue.put(
                _Task(WALL_CHANNEL, job.machine_config, log_key, missing, metric=metric)
            )
        return JobTicket(self, job, log_key, keys, job.metrics, waits, owned)

    def lookup(
        self,
        machine_config: MachineConfig,
        plans: Sequence[Plan],
        metrics: Sequence[str] = ("cycles",),
        seed: int = 0,
        timeout: float | None = None,
    ) -> "list[CostRecord]":
        """Submit-and-wait convenience: records of ``plans`` in order."""
        ticket = self.submit(
            CampaignJob(machine_config, tuple(plans), tuple(metrics), int(seed))
        )
        return ticket.result(timeout=timeout)

    def _assemble(
        self,
        log_key: CostLogKey,
        plan_keys: "list[str]",
        metric_names: "tuple[str, ...]",
    ) -> "list[CostRecord]":
        specs = [metric_spec(name) for name in metric_names]
        with self._lock:
            records = self._cache_for(log_key)
            out = []
            for key in plan_keys:
                values = {}
                for spec in specs:
                    if spec.channel == WALL_CHANNEL:
                        values[spec.name] = self._wall[(log_key, key, spec.name)]
                    else:
                        values[spec.name] = records[key][spec.name]
                out.append(CostRecord(plan_key=key, values=values))
            return out

    # -- raw measurement batches (campaign tables) -------------------------------

    def measure_units(
        self, machine_config: MachineConfig, units: Sequence[WorkUnit]
    ) -> "list[Measurement]":
        """Measure ``units`` with cross-client dedup, preserving unit order.

        Seeded units dedupe on ``(machine_hash, plan_key, noise_seed)`` — two
        sessions running the same campaign concurrently share one execution
        per unit — and recent measurements are memoised so a third session
        arriving later is served without touching the machine.  Units with
        ``noise_seed=None`` are not reproducible and execute directly.
        """
        digest = self._hash_for(machine_config)
        slots: "list[tuple[str, object]]" = []
        new_payloads: "list[tuple[tuple, WorkUnit]]" = []
        direct: "list[tuple[int, WorkUnit]]" = []
        with self._lock:
            if self._closed:
                raise ServiceError(f"{self.name} is shut down")
            for index, unit in enumerate(units):
                if unit.noise_seed is None:
                    direct.append((index, unit))
                    slots.append(("direct", index))
                    continue
                memo_key = (digest, plan_key(unit.plan), int(unit.noise_seed))
                hit = self._measure_memo.get(memo_key)
                if hit is not None:
                    self._counters["store_hits"] += 1
                    slots.append(("value", hit))
                    continue
                entry = self._measure_inflight.get(memo_key)
                if entry is not None:
                    self._counters["dedup_savings"] += 1
                    slots.append(("wait", entry))
                    continue
                entry = _Inflight()
                self._measure_inflight[memo_key] = entry
                new_payloads.append((memo_key, unit))
                slots.append(("wait", entry))
        if new_payloads:
            self._queue.put(
                _Task(
                    "measure",
                    machine_config,
                    CostLogKey(machine_hash=digest, seed=0),
                    payloads=new_payloads,
                )
            )
        direct_results: "dict[int, Measurement]" = {}
        if direct:
            machine = self._machine_for(machine_config)
            with self._machine_lock(digest):
                measured = self.backend.measure_units(
                    machine, [unit for _, unit in direct]
                )
            with self._lock:
                self._counters["measured"] += len(direct)
            direct_results = {
                index: measurement
                for (index, _), measurement in zip(direct, measured)
            }
        results: "list[Measurement]" = []
        for kind, payload in slots:
            if kind == "value":
                results.append(payload)  # type: ignore[arg-type]
            elif kind == "direct":
                results.append(direct_results[payload])  # type: ignore[index]
            else:
                entry: _Inflight = payload  # type: ignore[assignment]
                entry.event.wait()
                if entry.error is not None:
                    raise ServiceError(
                        "campaign measurement failed after retries"
                    ) from entry.error
                results.append(entry.value)  # type: ignore[arg-type]
        return results

    # -- worker fleet ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._queue.get()
            try:
                if task is None:
                    return
                try:
                    self._execute(task)
                except Exception as exc:
                    self._handle_failure(task, exc)
            finally:
                self._queue.task_done()

    def _execute(self, task: _Task) -> None:
        if task.channel == COUNTER_CHANNEL:
            self._execute_counters(task)
        elif task.channel == MODEL_CHANNEL:
            self._execute_model(task)
        elif task.channel == WALL_CHANNEL:
            self._execute_wall(task)
        elif task.channel == "measure":
            self._execute_measure(task)
        else:  # pragma: no cover - tasks are built by submit alone
            raise ValueError(f"unknown task channel {task.channel!r}")

    def _execute_counters(self, task: _Task) -> None:
        machine = self._machine_for(task.config)
        digest = task.log_key.machine_hash
        units = [
            WorkUnit(
                plan=plan,
                noise_seed=derive_seed(task.log_key.seed, "plan-cost", key),
            )
            for key, plan in task.plan_by_key.items()
        ]
        with self._machine_lock(digest):
            measurements = self.backend.measure_units(machine, units)
        staged = {
            key: counter_values(measurement)
            for key, measurement in zip(task.plan_by_key, measurements)
        }
        # Durability before visibility: records land in the store before any
        # waiter can observe them, so no returned value can be lost.
        self.store.append_cost_records(task.log_key, staged)
        with self._lock:
            records = self._cache_for(task.log_key)
            for key, values in staged.items():
                records.setdefault(key, {}).update(values)
            self._counters["measured"] += len(units)
        self._resolve(
            (digest, key, task.log_key.seed, COUNTER_CHANNEL)
            for key in task.plan_by_key
        )

    def _execute_model(self, task: _Task) -> None:
        digest = task.log_key.machine_hash
        scorer = self._scorer(digest, task.metric, task.config)
        values = scorer(list(task.plan_by_key.values()))
        staged = {
            key: {task.metric: float(value)}
            for key, value in zip(task.plan_by_key, values)
        }
        self.store.append_cost_records(task.log_key, staged)
        with self._lock:
            records = self._cache_for(task.log_key)
            for key, value_map in staged.items():
                records.setdefault(key, {}).update(value_map)
            self._counters["model_evaluations"] += len(staged)
        self._resolve(
            (digest, key, task.log_key.seed, MODEL_CHANNEL, task.metric)
            for key in task.plan_by_key
        )

    def _execute_wall(self, task: _Task) -> None:
        machine = self._machine_for(task.config)
        digest = task.log_key.machine_hash
        spec = metric_spec(task.metric)
        acquired = {}
        with self._machine_lock(digest):
            for key, plan in task.plan_by_key.items():
                acquired[key] = float(spec.measure(machine, plan))
        with self._lock:
            for key, value in acquired.items():
                # Volatile: memoised for the service's lifetime, never stored.
                self._wall[(task.log_key, key, task.metric)] = value
            self._counters["wall_evaluations"] += len(acquired)
        self._resolve(
            (digest, key, task.log_key.seed, WALL_CHANNEL, task.metric)
            for key in task.plan_by_key
        )

    def _execute_measure(self, task: _Task) -> None:
        machine = self._machine_for(task.config)
        digest = task.log_key.machine_hash
        units = [unit for _, unit in task.payloads]
        with self._machine_lock(digest):
            measurements = self.backend.measure_units(machine, units)
        finished: "list[_Inflight]" = []
        with self._lock:
            # Every waiter captured the entry object itself, so popping the
            # in-flight map before setting the events cannot orphan anyone.
            for (memo_key, _), measurement in zip(task.payloads, measurements):
                self._measure_memo.put(memo_key, measurement)
                entry = self._measure_inflight.pop(memo_key, None)
                if entry is not None:
                    entry.value = measurement
                    finished.append(entry)
            self._counters["measured"] += len(units)
        for entry in finished:
            entry.event.set()

    def _resolve(self, inflight_keys) -> None:
        """Pop finished in-flight entries and release their waiters."""
        finished = []
        with self._lock:
            for key in inflight_keys:
                entry = self._inflight.pop(key, None)
                if entry is not None:
                    finished.append(entry)
        for entry in finished:
            entry.event.set()

    def _handle_failure(self, task: _Task, exc: Exception) -> None:
        task.attempts += 1
        with self._lock:
            # Evict the machine so the retry starts from fresh simulator
            # state — whatever broke mid-batch cannot leak into the rerun.
            self._machines.pop(task.log_key.machine_hash, None)
            retry = task.attempts < self.max_attempts and not self._closed
            if retry:
                self._counters["retries"] += 1
        if retry:
            self._queue.put(task)
            return
        with self._lock:
            self._counters["failures"] += 1
            entries = []
            if task.channel == "measure":
                for memo_key, _ in task.payloads:
                    entry = self._measure_inflight.pop(memo_key, None)
                    if entry is not None:
                        entries.append(entry)
            else:
                suffix = () if task.channel == COUNTER_CHANNEL else (task.metric,)
                for key in task.plan_by_key:
                    inflight_key = (
                        task.log_key.machine_hash,
                        key,
                        task.log_key.seed,
                        task.channel,
                        *suffix,
                    )
                    entry = self._inflight.pop(inflight_key, None)
                    if entry is not None:
                        entries.append(entry)
        for entry in entries:
            entry.error = exc
            entry.event.set()

    # -- clients -----------------------------------------------------------------

    def client(
        self,
        machine: "MachineConfig | SimulatedMachine",
        seed: int = 0,
        objective: "str | Objective" = "cycles",
    ) -> "ServiceClient":
        """A cost-engine-compatible client bound to one machine and seed."""
        return ServiceClient(self, machine, seed=seed, objective=objective)

    # -- lifecycle ---------------------------------------------------------------

    def drain(self) -> None:
        """Block until every queued task has been fully processed."""
        self._queue.join()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker fleet (idempotent).

        ``wait=True`` (the default, the graceful path) drains the queue
        first, so every accepted job completes; ``wait=False`` only refuses
        new work and stops workers after their current task.  Waiters of
        tasks still queued at a non-graceful shutdown receive a
        :class:`ServiceError`.
        """
        with self._lock:
            if self._closed and not self._threads:
                return
            already_closing = self._closed
            self._closed = True
        if wait and not already_closing:
            self.drain()
        threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join()
        # Fail anything still pending (non-graceful shutdown only).
        with self._lock:
            leftovers = list(self._inflight.values()) + list(
                self._measure_inflight.values()
            )
            self._inflight.clear()
            self._measure_inflight.clear()
        for entry in leftovers:
            if not entry.event.is_set():
                entry.error = ServiceError(f"{self.name} shut down")
                entry.event.set()
        close_backend = getattr(self.backend, "close", None)
        if callable(close_backend):
            close_backend()
        if self._owns_store:
            close_store = getattr(self.store, "close", None)
            if callable(close_store):
                close_store()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- observability -----------------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of queue, dedup, measurement and shard state."""
        with self._lock:
            counters = dict(self._counters)
            in_flight = len(self._inflight) + len(self._measure_inflight)
        shard_stats = getattr(self.store, "shard_stats", None)
        shards = tuple(shard_stats()) if callable(shard_stats) else ()
        return ServiceStats(
            jobs=counters["jobs"],
            queue_depth=self._queue.qsize(),
            in_flight=in_flight,
            store_hits=counters["store_hits"],
            dedup_savings=counters["dedup_savings"],
            measured=counters["measured"],
            model_evaluations=counters["model_evaluations"],
            wall_evaluations=counters["wall_evaluations"],
            retries=counters["retries"],
            failures=counters["failures"],
            workers=len(self._threads),
            shards=shards,
        )

    def __repr__(self) -> str:
        return (
            f"CampaignService({self.name!r}, workers={len(self._threads)}, "
            f"backend={getattr(self.backend, 'name', type(self.backend).__name__)}, "
            f"store={self.store!r}, {self.stats().describe()})"
        )


class ServiceClient:
    """A drop-in :class:`~repro.runtime.cost_engine.CostEngine` over a service.

    Implements the engine surface the search strategies and sessions consume
    — ``records`` / ``batch`` / ``__call__`` / ``cost(objective)`` and the
    ``evaluations``/``measured`` counter pair — but every acquisition routes
    through the shared :class:`CampaignService`, so any number of clients
    (across threads and sessions) trigger exactly one real measurement per
    distinct ``(machine_hash, plan_key, seed)``.  ``measured`` counts the
    acquisitions *this* client's submissions enqueued; work served from the
    shared store or deduped against another client is free here, exactly as
    cache hits are free on a private engine.
    """

    def __init__(
        self,
        service: CampaignService,
        machine: "MachineConfig | SimulatedMachine",
        seed: int = 0,
        objective: "str | Objective" = "cycles",
    ):
        self.service = service
        self.config = machine.config if isinstance(machine, SimulatedMachine) else machine
        if not isinstance(self.config, MachineConfig):
            raise TypeError(f"cannot interpret {machine!r} as a machine")
        self.seed = int(seed)
        self.objective = resolve_objective(objective)
        self.key = CostLogKey(
            machine_hash=service._hash_for(self.config), seed=self.seed
        )
        #: Plan-cost requests served (cache hits included).
        self.evaluations = 0
        #: Acquisitions this client's submissions put on the service queue.
        self.measured = 0

    def records(
        self, plans: Sequence[Plan], metrics: Sequence[str] | None = None
    ) -> "list[CostRecord]":
        """Cost records of ``plans`` in order, via the service."""
        names = tuple(metrics) if metrics is not None else self.objective.metrics
        self.evaluations += len(plans)
        ticket = self.service.submit(
            CampaignJob(self.config, tuple(plans), names, self.seed)
        )
        result = ticket.result()
        self.measured += ticket.owned_units
        return result

    def cost(self, objective: "str | Objective") -> ObjectiveCost:
        """Bind ``objective`` to this client as a drop-in cost function."""
        return ObjectiveCost(self, resolve_objective(objective))

    def batch(self, plans: Sequence[Plan]) -> "list[float]":
        """Default-objective costs of ``plans`` in order."""
        records = self.records(plans)
        value = self.objective.value
        return [value(record.values) for record in records]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    def flush(self) -> None:
        """Compat no-op: the service persists records as they are acquired."""
        return None

    def compact(self) -> None:
        """Compact this client's shard in the service's store."""
        self.service.store.compact_cost_records(self.key)

    def __repr__(self) -> str:
        return (
            f"ServiceClient(machine={self.config.name!r}, seed={self.seed}, "
            f"objective={self.objective.describe()!r}, "
            f"{self.measured}/{self.evaluations} measured, "
            f"service={self.service.name!r})"
        )


class ServiceBackend:
    """An :class:`~repro.runtime.backends.ExecutionBackend` over a service.

    Lets the existing campaign driver (``run_campaign``, ``measure_plans``)
    execute through a shared :class:`CampaignService`: every unit batch gains
    the service's cross-client dedup, so two sessions measuring the same
    campaign concurrently perform each unit's work once.
    """

    name = "service"

    def __init__(self, service: CampaignService):
        self.service = service

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> "list[Measurement]":
        return self.service.measure_units(machine.config, units)

    def close(self) -> None:
        """No-op: the shared service's lifecycle belongs to its owner."""
        return None

    def __repr__(self) -> str:
        return f"ServiceBackend({self.service.name!r})"


class ServiceStoreView:
    """A client session's view of the service's store: read-through, no record writes.

    The service is its store's single record-log writer; a client session
    holding this view reads campaign tables and cost records as usual, while
    record appends become no-ops (whatever a client acquired *through the
    service* is already persisted by the service itself).  Campaign-table
    ``put`` passes through — tables are atomic whole-file writes with no
    writer discipline to protect.
    """

    def __init__(self, store: CampaignStore):
        self._store = store

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return self._store.get(key)

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        self._store.put(key, table)

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        return self._store.get_cost_records(key)

    def append_cost_records(
        self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]
    ) -> None:
        return None  # the service already persisted everything it acquired

    def compact_cost_records(self, key: CostLogKey) -> None:
        return None  # shard maintenance belongs to the service

    def get_cost_table(self, key) -> "dict[str, float] | None":
        return self._store.get_cost_table(key)

    def put_cost_table(self, key, costs: "dict[str, float]") -> None:
        return None

    def clear(self) -> None:
        return None  # a tenant must not clear the shared store

    def __repr__(self) -> str:
        return f"ServiceStoreView({self._store!r})"


def serve(
    store: "str | CampaignStore | None" = None,
    backend: "str | ExecutionBackend" = "batched",
    workers: int = 2,
    **kwargs: object,
) -> CampaignService:
    """Start a :class:`CampaignService` (the ``repro.serve(...)`` entry point).

    >>> service = repro.serve(store="./campaigns", workers=4)
    >>> a = repro.Session.connect(service)
    >>> b = repro.Session.connect(service)          # shares a's measurements
    >>> best = a.search(14)                          # measured once, total
    >>> service.stats().measured                     # real work, fleet-wide
    """
    from repro.runtime.backends import resolve_backend

    return CampaignService(
        store=store, backend=resolve_backend(backend), workers=workers, **kwargs
    )
