"""The multi-tenant campaign service: job queue, worker fleet, shared store.

Everything below the session layer is already order-independent (per-plan
noise seeds), batched (``prepare_batch``) and durable (append-log record
stores) — but one :class:`~repro.runtime.session.Session` is still one
process serving one caller.  Run the paper's measurement campaigns from many
figure scripts, searches and sweeps at once and each opens its own store,
races the others' appends and re-measures work a sibling finished seconds
ago.  :class:`CampaignService` closes that gap: **one** process-wide owner of
the measurement pipeline that any number of sessions submit work to.

Architecture
------------

* **Job queue.**  Clients submit :class:`CampaignJob`\\ s — ``(machine
  configuration, plan batch, metrics, seed)`` work units.  ``submit``
  partitions a job by acquisition channel, serves whatever the shared record
  cache already knows, attaches to any identical work already in flight, and
  enqueues only the remainder.  The returned :class:`JobTicket` blocks until
  every record the job needs exists.
* **Dedup.**  Work is identified by ``(machine_hash, plan_key, seed,
  channel)``.  However many sessions ask for a plan's cost concurrently,
  exactly one real measurement happens: the first submitter enqueues it,
  everyone else waits on the same in-flight entry.  (Raw measurement batches
  — campaign tables — dedupe the same way on ``(machine_hash, plan_key,
  noise_seed)`` through :meth:`CampaignService.measure_units`.)
* **Worker fleet.**  Daemon threads drain the queue through the service's
  :class:`~repro.runtime.backends.ExecutionBackend` — the fused
  :class:`~repro.runtime.backends.BatchedBackend` by default, a
  :class:`~repro.runtime.backends.MultiprocessBackend` for process fan-out;
  the protocol leaves room for a socket/multi-host backend later.  All real
  work routes through ``prepare_batch``; per-machine execution is serialised
  so simulator state is never shared across threads.
* **Failure discipline.**  A failing task is retried with exponential
  backoff and deterministic jitter (fresh machine state each attempt, the
  queue keeps moving while it waits), and after ``max_attempts`` it moves to
  a **dead-letter quarantine** — its waiters receive the error, the rest of
  the fleet is unaffected, and :meth:`CampaignService.requeue_quarantined`
  can give it a fresh set of attempts later.  Retried executions re-check
  the record cache under the machine lock first, so a retry never persists
  a record twice.  Jobs can carry a ``deadline``; tickets whose ``result``
  times out *detach*, so an abandoned waiter can never wedge a later
  submit of the same key.  A supervisor thread fires due retries, detects
  dead worker threads, recovers their in-progress tasks and respawns them;
  :meth:`CampaignService.health` reports ``ok``/``degraded``/``closed``,
  and an opt-in :class:`ServiceClient` fallback degrades to a private
  serial engine (bit-identical results) when the service cannot answer.
  Chaos-test all of it with :mod:`repro.runtime.faults` (DESIGN.md §12).
* **Sharded record log.**  Results persist in the service's store —
  :class:`~repro.runtime.sharded_store.ShardedRecordStore` for a directory
  spec: one append-log writer per ``(machine_hash, seed)`` shard, lock-free
  readers, background compaction.  Records are appended *before* waiters are
  released, so no value a client observed can be lost by a crash.
* **Clients.**  :meth:`CampaignService.client` returns a
  :class:`ServiceClient` — a drop-in for
  :class:`~repro.runtime.cost_engine.CostEngine` (``records`` / ``cost`` /
  ``batch`` / the ``evaluations``/``measured`` counters) whose acquisitions
  all route through the service.  ``Session.connect(service=...)`` builds a
  whole session on top; :func:`repro.serve` is the one-line constructor.
* **Observability.**  :meth:`CampaignService.stats` reports queue depth,
  in-flight units, dedup savings, store hits vs real measurements, retries,
  failures and per-shard sizes.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.machine.machine import MachineConfig, PreparedPlanCache, SimulatedMachine
from repro.machine.measurement import Measurement
from repro.runtime.backends import BatchedBackend, ExecutionBackend, WorkUnit
from repro.runtime.cost_engine import CostEngine, ObjectiveCost
from repro.runtime.metrics import (
    COUNTER_CHANNEL,
    MODEL_CHANNEL,
    WALL_CHANNEL,
    CostRecord,
    counter_values,
    has_counter_values,
    metric_spec,
    nondeterministic_metric_names,
)
from repro.runtime.objectives import Objective, resolve_objective
from repro.runtime.sharded_store import ShardedRecordStore, ShardStats
from repro.runtime.store import (
    CampaignKey,
    CampaignStore,
    CostLogKey,
    CostRecords,
    MemoryStore,
    machine_config_hash,
    resolve_store,
)
from repro.runtime.table import MeasurementTable
from repro.util.lru import LRUCache
from repro.util.rng import derive_seed
from repro.util.validation import check_positive_int
from repro.wht.encoding import plan_key
from repro.wht.plan import Plan

__all__ = [
    "CampaignJob",
    "JobTicket",
    "ServiceError",
    "ServiceStats",
    "ServiceHealth",
    "QuarantineEntry",
    "CampaignService",
    "ServiceClient",
    "ServiceBackend",
    "ServiceStoreView",
    "serve",
]


class ServiceError(RuntimeError):
    """A campaign service request failed (worker failure after retries,
    shutdown while waiting, or a timeout)."""


@dataclass(frozen=True)
class CampaignJob:
    """One unit of service work: a plan batch to evaluate on one machine.

    ``metrics`` name what must be known for every plan of ``plan_batch``;
    ``seed`` is the noise-derivation seed (the same meaning as
    :class:`~repro.runtime.cost_engine.CostEngine`'s ``seed`` — it selects
    the record shard and pins each plan's noise draw).  ``scale`` is a free
    informational tag (e.g. the submitting session's scale name) carried
    into reports.  ``deadline`` (seconds, counted from submission) bounds
    how long the job's :meth:`JobTicket.result` may block: past it, the
    ticket raises and detaches, whether or not a ``timeout`` was passed.
    """

    machine_config: MachineConfig
    plan_batch: "tuple[Plan, ...]"
    metrics: "tuple[str, ...]" = ("cycles",)
    seed: int = 0
    scale: str | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if not self.plan_batch:
            raise ValueError("a CampaignJob needs at least one plan")
        if not self.metrics:
            raise ValueError("a CampaignJob needs at least one metric")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {self.deadline}")


class _Inflight:
    """One pending acquisition every interested waiter blocks on.

    ``key`` is where the entry is registered (so a detaching ticket can
    unregister it); ``waiters`` counts the tickets attached — when the last
    one detaches, the entry is dropped and a later submit of the same key
    owns fresh work instead of wedging on an abandoned waiter.
    """

    __slots__ = ("event", "error", "value", "key", "waiters")

    def __init__(self, key: tuple = ()) -> None:
        self.event = threading.Event()
        self.error: BaseException | None = None
        self.value: object | None = None
        self.key = key
        self.waiters = 0


@dataclass
class _Task:
    """One queued batch of real work for the worker fleet."""

    channel: str  # COUNTER_CHANNEL | WALL_CHANNEL | MODEL_CHANNEL | "measure"
    config: MachineConfig
    log_key: CostLogKey
    #: plan key -> plan for record channels; unused for "measure".
    plan_by_key: "dict[str, Plan]" = field(default_factory=dict)
    #: wall/model channels: the one metric this task acquires.
    metric: str | None = None
    #: "measure" channel: (dedup key, unit) payloads.
    payloads: "list[tuple[tuple, WorkUnit]]" = field(default_factory=list)
    attempts: int = 0

    @property
    def token(self) -> str:
        """A stable, human-scannable identity for retry jitter and quarantine."""
        if self.channel == "measure":
            parts = sorted(f"{key[1]}#{key[2]}" for key, _ in self.payloads)
        else:
            parts = sorted(self.plan_by_key)
        digest = hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:12]
        return (
            f"{self.channel}:{self.log_key.machine_hash[:12]}:s{self.log_key.seed}"
            f":{self.metric or '-'}:{digest}"
        )


class JobTicket:
    """Handle on one submitted :class:`CampaignJob`.

    ``result()`` blocks until every record the job needs exists and returns
    one :class:`~repro.runtime.metrics.CostRecord` per plan, in job order.
    ``owned_units`` counts the acquisitions *this* submission enqueued (as
    opposed to records served from the store or attached to another
    submitter's in-flight work) — the client-side measurement counter.

    A ``result`` that gives up — its ``timeout``, the job's ``deadline``,
    or a failure — **detaches** first: the ticket withdraws its interest,
    and in-flight entries nobody else waits on are unregistered, so a later
    submit of the same key owns fresh work instead of waiting behind an
    abandoned ticket.
    """

    def __init__(
        self,
        service: "CampaignService",
        job: CampaignJob,
        log_key: CostLogKey,
        plan_keys: "list[str]",
        metric_names: "tuple[str, ...]",
        waits: "list[_Inflight]",
        owned_units: int,
        deadline: float | None = None,
    ):
        self._service = service
        self.job = job
        self._log_key = log_key
        self._plan_keys = plan_keys
        self._metric_names = metric_names
        self._waits = waits
        self.owned_units = owned_units
        #: Absolute (monotonic) expiry from the job's ``deadline``, if any.
        self._deadline = deadline
        self._detached = False

    def done(self) -> bool:
        """Whether every acquisition this job depends on has finished."""
        return all(entry.event.is_set() for entry in self._waits)

    @property
    def detached(self) -> bool:
        """Whether this ticket has withdrawn its interest (see :meth:`detach`)."""
        return self._detached

    def failed(self) -> bool:
        """Whether any acquisition this job depends on ended in an error."""
        return any(entry.error is not None for entry in self._waits)

    def detach(self) -> None:
        """Withdraw this ticket's interest in its unfinished work (idempotent).

        Entries with no remaining waiters are unregistered from the
        in-flight map; work already executing completes and persists
        normally (resolving is harmless), but nothing can block on this
        ticket's entries again.
        """
        if self._detached:
            return
        self._detached = True
        self._service._detach_waits(self._waits)

    def result(self, timeout: float | None = None) -> "list[CostRecord]":
        """Block until the job's records exist, then return them in order.

        Raises :class:`ServiceError` (after detaching) when ``timeout`` or
        the job's ``deadline`` expires first, or when the work failed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        if self._deadline is not None:
            deadline = self._deadline if deadline is None else min(deadline, self._deadline)
        for entry in self._waits:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                remaining = 0.0
            if not entry.event.wait(remaining):
                self.detach()
                budget = (
                    f"timed out after {timeout} s"
                    if timeout is not None and (self._deadline is None or deadline < self._deadline)
                    else f"exceeded the job deadline of {self.job.deadline} s"
                )
                raise ServiceError(f"{budget} waiting for campaign work")
            if entry.error is not None:
                self.detach()
                raise ServiceError(
                    "campaign work failed after retries"
                ) from entry.error
        return self._service._assemble(self._log_key, self._plan_keys, self._metric_names)

    def __repr__(self) -> str:
        state = "done" if self.done() else f"waiting on {len(self._waits)}"
        return f"JobTicket({len(self._plan_keys)} plans, {state})"


@dataclass(frozen=True)
class ServiceStats:
    """One consistent snapshot of a service's counters and store occupancy."""

    #: Jobs accepted by ``submit`` (not counting raw ``measure_units`` batches).
    jobs: int
    #: Tasks waiting in the queue right now.
    queue_depth: int
    #: Acquisitions currently in flight (enqueued or executing).
    in_flight: int
    #: Per-(plan, metric) requests served straight from the record cache
    #: (which is read-through from the store).
    store_hits: int
    #: Requests that attached to work another submitter already had in
    #: flight — each one a duplicate measurement that never happened.
    dedup_savings: int
    #: Real measurements executed (one per distinct plan per shard).
    measured: int
    #: Plans evaluated through the analytic model scorers (no machine).
    model_evaluations: int
    #: Wall-channel executions.
    wall_evaluations: int
    #: Tasks re-enqueued after a worker failure.
    retries: int
    #: Tasks abandoned after exhausting their attempts.
    failures: int
    #: Size of the worker fleet.
    workers: int
    #: Tasks currently dead-lettered (see :meth:`CampaignService.quarantined`).
    quarantined: int = 0
    #: Worker threads the supervisor replaced after they died mid-task.
    respawns: int = 0
    #: Tasks waiting out a retry backoff (not in the queue, not executing).
    scheduled_retries: int = 0
    #: Alias of ``scheduled_retries`` under the operator-facing name: how
    #: many tasks are currently *retrying* (parked in the backoff heap).
    retrying: int = 0
    #: Seconds until the earliest scheduled retry fires (``None`` when the
    #: retry heap is empty; ``0.0`` when one is already due).
    next_retry_eta: "float | None" = None
    #: Submissions answered from the request-id dedup table (a reconnect
    #: resubmitted work the service already had in flight or finished).
    resubmits: int = 0
    #: Fleet membership size, when this service fronts a fleet member
    #: (see :meth:`CampaignService.attach_fleet`); 0 standalone.
    members: int = 0
    #: Members this service currently believes healthy.
    members_healthy: int = 0
    #: Misdirected submits forwarded to their ring owner (one extra hop).
    redirects: int = 0
    #: Batches adopted locally because their owner was unreachable.
    failovers: int = 0
    #: Per-shard occupancy, when the store exposes it (sharded stores do).
    shards: "tuple[ShardStats, ...]" = ()

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"jobs={self.jobs} queue={self.queue_depth} inflight={self.in_flight} "
            f"store_hits={self.store_hits} dedup={self.dedup_savings} "
            f"measured={self.measured} retries={self.retries} "
            f"failures={self.failures} quarantined={self.quarantined} "
            f"shards={len(self.shards)}"
        )


@dataclass(frozen=True)
class ServiceHealth:
    """One snapshot of a service's liveness (:meth:`CampaignService.health`).

    ``state`` is ``"ok"`` (full fleet alive, nothing quarantined),
    ``"degraded"`` (dead workers awaiting respawn, or dead-lettered tasks a
    human should look at) or ``"closed"``.  Degradation is advisory — the
    service keeps serving — but a :class:`ServiceClient` built with
    ``fallback=True`` uses ``"closed"`` to route around the service without
    submitting at all.
    """

    state: str
    alive_workers: int
    expected_workers: int
    queue_depth: int
    scheduled_retries: int
    quarantined: int
    respawns: int
    #: Fleet membership (0/0 for a standalone service).
    members: int = 0
    members_healthy: int = 0

    @property
    def ok(self) -> bool:
        return self.state == "ok"

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.state}: workers={self.alive_workers}/{self.expected_workers} "
            f"queue={self.queue_depth} retries_scheduled={self.scheduled_retries} "
            f"quarantined={self.quarantined} respawns={self.respawns}"
        )


@dataclass(frozen=True)
class QuarantineEntry:
    """One dead-lettered task: what failed, how often, and why.

    ``token`` is the handle :meth:`CampaignService.requeue_quarantined`
    accepts; ``error`` is the ``repr`` of the final attempt's exception.
    """

    token: str
    channel: str
    machine_hash: str
    seed: int
    plan_keys: "tuple[str, ...]"
    metric: str | None
    attempts: int
    error: str


def _resolve_service_store(spec: "str | os.PathLike[str] | CampaignStore | None") -> CampaignStore:
    """Service store resolution: directory specs become *sharded* stores.

    ``None`` gives the service a private in-memory store (the read-through
    cache still works; nothing survives the process).  A path spec becomes a
    :class:`ShardedRecordStore` — the service is long-lived and multi-tenant,
    exactly what sharding is for — while explicit store instances and the
    ``"memory"``/``"none"`` presets resolve exactly as
    :func:`~repro.runtime.store.resolve_store` resolves them (including the
    bare-string rejection: a typo cannot silently change semantics).
    """
    if spec is None:
        return MemoryStore()
    if isinstance(spec, str):
        if spec in ("memory", "none"):
            return resolve_store(spec)
        if os.sep in spec or (os.altsep is not None and os.altsep in spec):
            return ShardedRecordStore(spec)
        return resolve_store(spec)  # raises the canonical bare-string error
    if isinstance(spec, os.PathLike):
        return ShardedRecordStore(spec)
    return resolve_store(spec)


class CampaignService:
    """One process-wide owner of measurement work for many client sessions.

    Parameters
    ----------
    store:
        Where records and campaign tables persist.  ``None`` — a private
        in-memory store; a directory path — a :class:`ShardedRecordStore`
        rooted there; any :class:`~repro.runtime.store.CampaignStore`
        instance passes through.  The service treats itself as the store's
        **single writer** for record logs; client sessions read through it.
    backend:
        How queued work executes (default: the fused
        :class:`~repro.runtime.backends.BatchedBackend`).
    workers:
        Worker-fleet size.  Execution on one machine configuration is
        serialised (simulator state is not shared across threads), so extra
        workers buy overlap across *different* machines/shards and keep the
        queue moving while one batch simulates.
    max_attempts:
        Total tries per task before it is quarantined and its waiters
        receive the failure.
    request_memo:
        Capacity of the request-id idempotency table: ``submit`` calls
        carrying a ``request_id`` (the transport layer's resubmits) are
        deduped against this many in-flight *and completed* submissions.
    backoff_base:
        First-retry backoff in seconds; attempt ``k``'s delay is
        ``min(backoff_base * 2**(k-1), backoff_cap)`` scaled by a
        deterministic jitter in ``[0.5, 1.5)`` derived from ``retry_seed``
        and the task's identity.  ``0`` disables backoff (instant retry).
    backoff_cap:
        Upper bound on any single backoff delay, in seconds.
    supervision_interval:
        How often the supervisor thread scans for dead workers (due
        retries wake it immediately).
    retry_seed:
        Seed of the backoff jitter derivation — two services configured
        identically retry on identical schedules.
    shared_store:
        Fleet mode: this service is **not** the store's only record
        writer (several fleet members append into one record space).
        Every counter/model execution then re-reads the store under the
        machine lock before measuring, so work another member persisted
        — say, a member that died after appending but before answering —
        is served as store hits instead of being measured again.
    """

    def __init__(
        self,
        store: "str | CampaignStore | None" = None,
        backend: ExecutionBackend | None = None,
        workers: int = 2,
        max_attempts: int = 3,
        measurement_memo: int = 8192,
        request_memo: int = 4096,
        name: str = "campaign-service",
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        supervision_interval: float = 0.2,
        retry_seed: int = 0,
        shared_store: bool = False,
    ):
        check_positive_int(workers, "workers")
        check_positive_int(max_attempts, "max_attempts")
        if backoff_base < 0:
            raise ValueError(f"backoff_base must be non-negative, got {backoff_base}")
        if backoff_cap < backoff_base:
            raise ValueError(
                f"backoff_cap ({backoff_cap}) must be at least backoff_base ({backoff_base})"
            )
        if supervision_interval <= 0:
            raise ValueError(
                f"supervision_interval must be positive, got {supervision_interval}"
            )
        self.name = name
        self._owns_store = not isinstance(store, CampaignStore)
        self.store = _resolve_service_store(store)
        self.backend = backend if backend is not None else BatchedBackend()
        self.max_attempts = int(max_attempts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.supervision_interval = float(supervision_interval)
        self.retry_seed = int(retry_seed)
        self.shared_store = bool(shared_store)
        #: Fleet membership view (:meth:`attach_fleet`); None standalone.
        self._fleet = None
        self._lock = threading.RLock()
        self._queue: "queue.Queue[_Task | None]" = queue.Queue()
        #: Authoritative record cache per shard, read-through from the store.
        #: Coherent because this service is the store's single record writer.
        self._records: "dict[CostLogKey, CostRecords]" = {}
        #: Wall-channel values: volatile, never persisted (host-specific).
        self._wall: "dict[tuple[CostLogKey, str, str], float]" = {}
        #: (machine_hash, plan_key, seed, channel[, metric]) -> pending work.
        self._inflight: "dict[tuple, _Inflight]" = {}
        #: Raw-measurement dedup: (machine_hash, plan_key, noise_seed).
        self._measure_inflight: "dict[tuple, _Inflight]" = {}
        self._measure_memo: "LRUCache[tuple, Measurement]" = LRUCache(measurement_memo)
        self._machines: "dict[str, SimulatedMachine]" = {}
        self._machine_locks: "dict[str, threading.Lock]" = {}
        self._hashes: "dict[MachineConfig, str]" = {}
        self._scorers: "dict[tuple[str, str], object]" = {}
        self._counters = {
            "jobs": 0,
            "store_hits": 0,
            "dedup_savings": 0,
            "measured": 0,
            "model_evaluations": 0,
            "wall_evaluations": 0,
            "retries": 0,
            "failures": 0,
            "respawns": 0,
            "resubmits": 0,
            "redirects": 0,
            "failovers": 0,
        }
        #: Request-id idempotency table: a remote client that reconnects and
        #: resubmits a request id it never saw an answer for is handed the
        #: *same* ticket — the work is never enqueued twice, whether it is
        #: still in flight or already finished (the LRU keeps completed
        #: tickets around for late resubmits).
        self._request_tickets: "LRUCache[str, JobTicket]" = LRUCache(request_memo)
        self._closed = False
        #: Tasks accepted but not yet terminal (queued, executing, or
        #: waiting out a retry backoff).  ``drain`` waits on this — the
        #: queue's own counters cannot see a task parked in the retry heap.
        self._outstanding = 0
        self._work_cv = threading.Condition(self._lock)
        #: Worker-thread name -> the task it is executing right now.  A
        #: thread that dies leaves its entry behind; the supervisor recovers
        #: the task from here.
        self._executing: "dict[str, _Task]" = {}
        #: Scheduled retries: (due monotonic time, tiebreak, task).
        self._retries: "list[tuple[float, int, _Task]]" = []
        self._retry_seq = itertools.count()
        self._supervisor_cv = threading.Condition(self._lock)
        #: Dead-letter quarantine: task token -> report (+ the parked task).
        self._quarantine: "dict[str, QuarantineEntry]" = {}
        self._quarantined_tasks: "dict[str, _Task]" = {}
        self._threads = [
            threading.Thread(
                target=self._worker_loop, name=f"{name}-worker-{index}", daemon=True
            )
            for index in range(int(workers))
        ]
        for thread in self._threads:
            thread.start()
        self._supervisor: "threading.Thread | None" = threading.Thread(
            target=self._supervise, name=f"{name}-supervisor", daemon=True
        )
        self._supervisor.start()

    # -- resolution helpers ------------------------------------------------------

    def _hash_for(self, config: MachineConfig) -> str:
        digest = self._hashes.get(config)
        if digest is None:
            digest = machine_config_hash(config)
            self._hashes[config] = digest
        return digest

    def _machine_for(self, config: MachineConfig) -> SimulatedMachine:
        digest = self._hash_for(config)
        with self._lock:
            machine = self._machines.get(digest)
            if machine is None:
                machine = SimulatedMachine(
                    config, prepared_cache=PreparedPlanCache(512)
                )
                self._machines[digest] = machine
                self._machine_locks[digest] = threading.Lock()
            return machine

    def _machine_lock(self, digest: str) -> threading.Lock:
        with self._lock:
            return self._machine_locks.setdefault(digest, threading.Lock())

    def _cache_for(self, log_key: CostLogKey) -> CostRecords:
        """The shard's record cache, seeded from the store on first touch."""
        cache = self._records.get(log_key)
        if cache is None:
            cache = self.store.get_cost_records(log_key)
            volatile = nondeterministic_metric_names()
            if volatile:
                for record in cache.values():
                    for metric in volatile:
                        record.pop(metric, None)
            self._records[log_key] = cache
        return cache

    def _scorer(self, digest: str, metric: str, config: MachineConfig):
        scorer = self._scorers.get((digest, metric))
        if scorer is None:
            scorer = metric_spec(metric).scorer_factory(config)
            self._scorers[(digest, metric)] = scorer
        return scorer

    # -- submission --------------------------------------------------------------

    def submit(self, job: CampaignJob, request_id: "str | None" = None) -> JobTicket:
        """Accept ``job``, enqueue only its genuinely missing work.

        Partitioning happens under the service lock: every requested
        ``(plan, metric)`` is classified as a record-cache hit, an
        attachment to in-flight work, or new work this submission owns —
        which is what makes "exactly one real measurement per distinct
        ``(machine_hash, plan_key, seed, channel)``" hold under any number
        of concurrent submitters.

        ``request_id`` arms **idempotent resubmission** (the transport
        layer's reconnect discipline): a second ``submit`` carrying an id
        the service has seen returns the *original* ticket — whether its
        work is still in flight or long finished — so a client that lost
        the response frame can ask again without enqueuing anything.  A
        cached ticket that failed or detached is discarded and the job is
        accepted fresh (a resubmit must be able to heal, not replay an
        error forever).
        """
        if request_id is not None:
            with self._lock:
                cached = self._request_tickets.get(request_id)
                if cached is not None and not cached.detached and not cached.failed():
                    self._counters["resubmits"] += 1
                    return cached
        specs = [metric_spec(name) for name in job.metrics]
        plans = list(job.plan_batch)
        keys = [plan_key(plan) for plan in plans]
        digest = self._hash_for(job.machine_config)
        log_key = CostLogKey(machine_hash=digest, seed=int(job.seed))

        waits: "list[_Inflight]" = []
        seen_inflight: "set[tuple]" = set()
        owned = 0
        counter_missing: "dict[str, Plan]" = {}
        wall_missing: "dict[str, dict[str, Plan]]" = {}
        model_missing: "dict[str, dict[str, Plan]]" = {}

        def classify(inflight_key: tuple, missing: "dict[str, Plan]", key: str, plan: Plan) -> None:
            nonlocal owned
            if inflight_key in seen_inflight:
                return
            seen_inflight.add(inflight_key)
            entry = self._inflight.get(inflight_key)
            if entry is not None:
                self._counters["dedup_savings"] += 1
                entry.waiters += 1
                waits.append(entry)
                return
            entry = _Inflight(inflight_key)
            entry.waiters = 1
            self._inflight[inflight_key] = entry
            waits.append(entry)
            owned += 1
            missing[key] = plan

        with self._lock:
            if self._closed:
                raise ServiceError(f"{self.name} is shut down")
            self._counters["jobs"] += 1
            records = self._cache_for(log_key)
            for key, plan in zip(keys, plans):
                record = records.get(key)
                for spec in specs:
                    if spec.channel == WALL_CHANNEL:
                        if (log_key, key, spec.name) in self._wall:
                            self._counters["store_hits"] += 1
                            continue
                        classify(
                            (digest, key, log_key.seed, WALL_CHANNEL, spec.name),
                            wall_missing.setdefault(spec.name, {}),
                            key,
                            plan,
                        )
                        continue
                    if record is not None and spec.name in record:
                        self._counters["store_hits"] += 1
                        continue
                    if spec.channel == COUNTER_CHANNEL:
                        classify(
                            (digest, key, log_key.seed, COUNTER_CHANNEL),
                            counter_missing,
                            key,
                            plan,
                        )
                    else:
                        classify(
                            (digest, key, log_key.seed, MODEL_CHANNEL, spec.name),
                            model_missing.setdefault(spec.name, {}),
                            key,
                            plan,
                        )

        if counter_missing:
            self._enqueue(
                _Task(COUNTER_CHANNEL, job.machine_config, log_key, counter_missing)
            )
        for metric, missing in model_missing.items():
            self._enqueue(
                _Task(MODEL_CHANNEL, job.machine_config, log_key, missing, metric=metric)
            )
        for metric, missing in wall_missing.items():
            self._enqueue(
                _Task(WALL_CHANNEL, job.machine_config, log_key, missing, metric=metric)
            )
        deadline = None if job.deadline is None else time.monotonic() + job.deadline
        ticket = JobTicket(self, job, log_key, keys, job.metrics, waits, owned, deadline)
        if request_id is not None:
            with self._lock:
                self._request_tickets.put(request_id, ticket)
        return ticket

    def lookup(
        self,
        machine_config: MachineConfig,
        plans: Sequence[Plan],
        metrics: Sequence[str] = ("cycles",),
        seed: int = 0,
        timeout: float | None = None,
    ) -> "list[CostRecord]":
        """Submit-and-wait convenience: records of ``plans`` in order."""
        ticket = self.submit(
            CampaignJob(machine_config, tuple(plans), tuple(metrics), int(seed))
        )
        return ticket.result(timeout=timeout)

    def _assemble(
        self,
        log_key: CostLogKey,
        plan_keys: "list[str]",
        metric_names: "tuple[str, ...]",
    ) -> "list[CostRecord]":
        specs = [metric_spec(name) for name in metric_names]
        with self._lock:
            records = self._cache_for(log_key)
            out = []
            for key in plan_keys:
                values = {}
                for spec in specs:
                    if spec.channel == WALL_CHANNEL:
                        values[spec.name] = self._wall[(log_key, key, spec.name)]
                    else:
                        values[spec.name] = records[key][spec.name]
                out.append(CostRecord(plan_key=key, values=values))
            return out

    # -- raw measurement batches (campaign tables) -------------------------------

    def measure_units(
        self, machine_config: MachineConfig, units: Sequence[WorkUnit]
    ) -> "list[Measurement]":
        """Measure ``units`` with cross-client dedup, preserving unit order.

        Seeded units dedupe on ``(machine_hash, plan_key, noise_seed)`` — two
        sessions running the same campaign concurrently share one execution
        per unit — and recent measurements are memoised so a third session
        arriving later is served without touching the machine.  Units with
        ``noise_seed=None`` are not reproducible and execute directly.
        """
        digest = self._hash_for(machine_config)
        slots: "list[tuple[str, object]]" = []
        new_payloads: "list[tuple[tuple, WorkUnit]]" = []
        direct: "list[tuple[int, WorkUnit]]" = []
        with self._lock:
            if self._closed:
                raise ServiceError(f"{self.name} is shut down")
            for index, unit in enumerate(units):
                if unit.noise_seed is None:
                    direct.append((index, unit))
                    slots.append(("direct", index))
                    continue
                memo_key = (digest, plan_key(unit.plan), int(unit.noise_seed))
                hit = self._measure_memo.get(memo_key)
                if hit is not None:
                    self._counters["store_hits"] += 1
                    slots.append(("value", hit))
                    continue
                entry = self._measure_inflight.get(memo_key)
                if entry is not None:
                    self._counters["dedup_savings"] += 1
                    slots.append(("wait", entry))
                    continue
                entry = _Inflight(memo_key)
                self._measure_inflight[memo_key] = entry
                new_payloads.append((memo_key, unit))
                slots.append(("wait", entry))
        if new_payloads:
            self._enqueue(
                _Task(
                    "measure",
                    machine_config,
                    CostLogKey(machine_hash=digest, seed=0),
                    payloads=new_payloads,
                )
            )
        direct_results: "dict[int, Measurement]" = {}
        if direct:
            machine = self._machine_for(machine_config)
            with self._machine_lock(digest):
                measured = self.backend.measure_units(
                    machine, [unit for _, unit in direct]
                )
            with self._lock:
                self._counters["measured"] += len(direct)
            direct_results = {
                index: measurement
                for (index, _), measurement in zip(direct, measured)
            }
        results: "list[Measurement]" = []
        for kind, payload in slots:
            if kind == "value":
                results.append(payload)  # type: ignore[arg-type]
            elif kind == "direct":
                results.append(direct_results[payload])  # type: ignore[index]
            else:
                entry: _Inflight = payload  # type: ignore[assignment]
                entry.event.wait()
                if entry.error is not None:
                    raise ServiceError(
                        "campaign measurement failed after retries"
                    ) from entry.error
                results.append(entry.value)  # type: ignore[arg-type]
        return results

    # -- worker fleet ------------------------------------------------------------

    def _enqueue(self, task: _Task) -> None:
        """Hand ``task`` to the worker fleet, counting it as outstanding."""
        with self._lock:
            self._outstanding += 1
        self._queue.put(task)

    def _finish_task(self) -> None:
        """Mark one outstanding task terminal (completed or quarantined)."""
        with self._work_cv:
            self._outstanding -= 1
            self._work_cv.notify_all()

    def _worker_loop(self) -> None:
        me = threading.current_thread().name
        while True:
            task = self._queue.get()
            if task is None:
                return
            with self._lock:
                self._executing[me] = task
            try:
                self._execute(task)
            except Exception as exc:
                with self._lock:
                    self._executing.pop(me, None)
                self._handle_failure(task, exc)
            except BaseException:
                # The worker dies — an injected crash, or a genuine
                # interpreter-level failure an ``except Exception`` retry
                # must not paper over.  The task stays in ``_executing`` so
                # the supervisor recovers it, and the thread exits so the
                # supervisor respawns it.
                return
            else:
                with self._lock:
                    self._executing.pop(me, None)
                self._finish_task()

    def _execute(self, task: _Task) -> None:
        if task.channel == COUNTER_CHANNEL:
            self._execute_counters(task)
        elif task.channel == MODEL_CHANNEL:
            self._execute_model(task)
        elif task.channel == WALL_CHANNEL:
            self._execute_wall(task)
        elif task.channel == "measure":
            self._execute_measure(task)
        else:  # pragma: no cover - tasks are built by submit alone
            raise ValueError(f"unknown task channel {task.channel!r}")

    def _refresh_from_store(self, log_key: CostLogKey) -> None:
        """Fold the store's current log state into the record cache.

        Used by retries: an attempt whose append raised *mid-write* (a torn
        tail) may still have persisted its records — re-reading the log lets
        the retry serve them instead of re-measuring, and keeps the cache
        the store's superset even across partial failures.
        """
        try:
            stored = self.store.get_cost_records(log_key)
        except Exception:
            return  # a failing store read must not block the retry itself
        volatile = nondeterministic_metric_names()
        with self._lock:
            records = self._cache_for(log_key)
            for key, values in stored.items():
                clean = {
                    name: value for name, value in values.items() if name not in volatile
                }
                if clean:
                    records.setdefault(key, {}).update(clean)

    def _execute_counters(self, task: _Task) -> None:
        machine = self._machine_for(task.config)
        digest = task.log_key.machine_hash
        if task.attempts or self.shared_store:
            # Retries re-read for their own torn tails; shared-store (fleet)
            # services re-read for *other members'* appends — either way the
            # pending re-check below then skips everything already persisted.
            self._refresh_from_store(task.log_key)
        with self._machine_lock(digest):
            # Retry idempotence: an earlier attempt (or a concurrent fresh
            # submit after this ticket detached) may already have measured
            # part of this batch.  The re-check runs under the machine lock,
            # serialising it against every other execution on this machine,
            # so no plan's counters are ever persisted twice.
            with self._lock:
                records = self._cache_for(task.log_key)
                pending = {
                    key: plan
                    for key, plan in task.plan_by_key.items()
                    if not has_counter_values(records.get(key, {}))
                }
            if pending:
                units = [
                    WorkUnit(
                        plan=plan,
                        noise_seed=derive_seed(task.log_key.seed, "plan-cost", key),
                    )
                    for key, plan in pending.items()
                ]
                measurements = self.backend.measure_units(machine, units)
                staged = {
                    key: counter_values(measurement)
                    for key, measurement in zip(pending, measurements)
                }
                # Durability before visibility: records land in the store
                # before any waiter can observe them, so no value a client
                # saw can be lost by a crash.
                self.store.append_cost_records(task.log_key, staged)
                with self._lock:
                    records = self._cache_for(task.log_key)
                    for key, values in staged.items():
                        records.setdefault(key, {}).update(values)
                    self._counters["measured"] += len(units)
        self._resolve(
            (digest, key, task.log_key.seed, COUNTER_CHANNEL)
            for key in task.plan_by_key
        )

    def _execute_model(self, task: _Task) -> None:
        digest = task.log_key.machine_hash
        if task.attempts or self.shared_store:
            self._refresh_from_store(task.log_key)
        with self._lock:
            records = self._cache_for(task.log_key)
            pending = {
                key: plan
                for key, plan in task.plan_by_key.items()
                if task.metric not in records.get(key, {})
            }
        if pending:
            scorer = self._scorer(digest, task.metric, task.config)
            values = scorer(list(pending.values()))
            staged = {
                key: {task.metric: float(value)}
                for key, value in zip(pending, values)
            }
            self.store.append_cost_records(task.log_key, staged)
            with self._lock:
                records = self._cache_for(task.log_key)
                for key, value_map in staged.items():
                    records.setdefault(key, {}).update(value_map)
                self._counters["model_evaluations"] += len(staged)
        self._resolve(
            (digest, key, task.log_key.seed, MODEL_CHANNEL, task.metric)
            for key in task.plan_by_key
        )

    def _execute_wall(self, task: _Task) -> None:
        machine = self._machine_for(task.config)
        digest = task.log_key.machine_hash
        spec = metric_spec(task.metric)
        acquired = {}
        with self._machine_lock(digest):
            with self._lock:
                pending = [
                    (key, plan)
                    for key, plan in task.plan_by_key.items()
                    if (task.log_key, key, task.metric) not in self._wall
                ]
            for key, plan in pending:
                acquired[key] = float(spec.measure(machine, plan))
        with self._lock:
            for key, value in acquired.items():
                # Volatile: memoised for the service's lifetime, never stored.
                self._wall[(task.log_key, key, task.metric)] = value
            self._counters["wall_evaluations"] += len(acquired)
        self._resolve(
            (digest, key, task.log_key.seed, WALL_CHANNEL, task.metric)
            for key in task.plan_by_key
        )

    def _execute_measure(self, task: _Task) -> None:
        machine = self._machine_for(task.config)
        digest = task.log_key.machine_hash
        served: "list[_Inflight]" = []
        with self._machine_lock(digest):
            # Retry idempotence: an earlier attempt may have finished part
            # of the batch before dying — serve those from the memo.
            with self._lock:
                pending: "list[tuple[tuple, WorkUnit]]" = []
                for memo_key, unit in task.payloads:
                    hit = self._measure_memo.get(memo_key)
                    if hit is None:
                        pending.append((memo_key, unit))
                        continue
                    entry = self._measure_inflight.pop(memo_key, None)
                    if entry is not None:
                        entry.value = hit
                        served.append(entry)
            measurements = (
                self.backend.measure_units(machine, [unit for _, unit in pending])
                if pending
                else []
            )
        finished: "list[_Inflight]" = []
        with self._lock:
            # Every waiter captured the entry object itself, so popping the
            # in-flight map before setting the events cannot orphan anyone.
            for (memo_key, _), measurement in zip(pending, measurements):
                self._measure_memo.put(memo_key, measurement)
                entry = self._measure_inflight.pop(memo_key, None)
                if entry is not None:
                    entry.value = measurement
                    finished.append(entry)
            self._counters["measured"] += len(pending)
        for entry in served + finished:
            entry.event.set()

    def _resolve(self, inflight_keys) -> None:
        """Pop finished in-flight entries and release their waiters."""
        finished = []
        with self._lock:
            for key in inflight_keys:
                entry = self._inflight.pop(key, None)
                if entry is not None:
                    finished.append(entry)
        for entry in finished:
            entry.event.set()

    def _task_inflight_keys(self, task: _Task) -> "list[tuple]":
        """The in-flight map keys a task's waiters are registered under."""
        if task.channel == "measure":
            return [memo_key for memo_key, _ in task.payloads]
        suffix = () if task.channel == COUNTER_CHANNEL else (task.metric,)
        return [
            (task.log_key.machine_hash, key, task.log_key.seed, task.channel, *suffix)
            for key in task.plan_by_key
        ]

    def _detach_waits(self, waits: "list[_Inflight]") -> None:
        """Withdraw one ticket's interest in each unfinished entry.

        Entries left with no waiters are unregistered: the next submit of
        the same key owns fresh work.  The already-queued task still
        completes and persists normally — the idempotent re-check in the
        executors keeps a subsequent owner from measuring the key twice.
        """
        with self._lock:
            for entry in waits:
                if entry.event.is_set():
                    continue
                entry.waiters = max(0, entry.waiters - 1)
                if entry.waiters == 0 and self._inflight.get(entry.key) is entry:
                    del self._inflight[entry.key]

    def _backoff_delay(self, task: _Task) -> float:
        """Exponential backoff with deterministic jitter for the next retry.

        ``attempts`` is already incremented when this runs, so the first
        retry (attempts=1) waits ``~backoff_base``.  The jitter is a pure
        function of ``(retry_seed, task identity, attempt)`` in
        ``[0.5, 1.5)`` — reproducible, but de-synchronised across tasks.
        """
        if self.backoff_base <= 0.0:
            return 0.0
        exponent = min(task.attempts - 1, 32)
        delay = min(self.backoff_base * (2.0 ** exponent), self.backoff_cap)
        bits = derive_seed(self.retry_seed, "retry-jitter", task.token, str(task.attempts))
        jitter = 0.5 + (bits % (1 << 20)) / float(1 << 20)
        return delay * jitter

    def _handle_failure(self, task: _Task, exc: BaseException) -> None:
        task.attempts += 1
        with self._lock:
            # Evict the machine so the retry starts from fresh simulator
            # state — whatever broke mid-batch cannot leak into the rerun.
            self._machines.pop(task.log_key.machine_hash, None)
            retry = task.attempts < self.max_attempts and not self._closed
            if retry:
                self._counters["retries"] += 1
                due = time.monotonic() + self._backoff_delay(task)
                heapq.heappush(self._retries, (due, next(self._retry_seq), task))
                self._supervisor_cv.notify_all()
                return
        self._quarantine_task(task, exc)

    def _quarantine_task(self, task: _Task, exc: BaseException) -> None:
        """Dead-letter a task that exhausted its attempts.

        Its waiters receive the failure now; the task itself is parked (not
        dropped) so :meth:`requeue_quarantined` can revive it, and a *fresh*
        submit of the same keys starts over with a clean attempt budget —
        quarantine isolates poison work, it does not blacklist keys.
        """
        entries: "list[_Inflight]" = []
        with self._lock:
            self._counters["failures"] += 1
            source = self._measure_inflight if task.channel == "measure" else self._inflight
            for inflight_key in self._task_inflight_keys(task):
                entry = source.pop(inflight_key, None)
                if entry is not None:
                    entries.append(entry)
            if task.channel == "measure":
                plan_keys = tuple(sorted(key[1] for key, _ in task.payloads))
            else:
                plan_keys = tuple(sorted(task.plan_by_key))
            token = task.token
            self._quarantine[token] = QuarantineEntry(
                token=token,
                channel=task.channel,
                machine_hash=task.log_key.machine_hash,
                seed=task.log_key.seed,
                plan_keys=plan_keys,
                metric=task.metric,
                attempts=task.attempts,
                error=repr(exc),
            )
            self._quarantined_tasks[token] = task
        for entry in entries:
            entry.error = exc
            entry.event.set()
        self._finish_task()

    def quarantined(self) -> "tuple[QuarantineEntry, ...]":
        """The dead-letter queue: one report per quarantined task."""
        with self._lock:
            return tuple(self._quarantine.values())

    def requeue_quarantined(self, tokens: "Sequence[str] | None" = None) -> int:
        """Give quarantined tasks a fresh attempt budget and re-enqueue them.

        ``tokens`` selects which (default: all).  Returns how many tasks
        were revived.  Waiters of the original failure are *not* revived —
        they already received their error; new interest attaches through
        fresh submits, which dedupe against the re-registered in-flight
        entries as usual.
        """
        revived: "list[_Task]" = []
        with self._lock:
            if self._closed:
                raise ServiceError(f"{self.name} is shut down")
            selected = list(tokens) if tokens is not None else list(self._quarantine)
            for token in selected:
                self._quarantine.pop(token, None)
                task = self._quarantined_tasks.pop(token, None)
                if task is None:
                    continue
                task.attempts = 0
                source = (
                    self._measure_inflight if task.channel == "measure" else self._inflight
                )
                for inflight_key in self._task_inflight_keys(task):
                    if inflight_key not in source:
                        source[inflight_key] = _Inflight(inflight_key)
                revived.append(task)
        for task in revived:
            self._enqueue(task)
        return len(revived)

    # -- supervision -------------------------------------------------------------

    def _supervise(self) -> None:
        """Fire due retries; detect, recover and respawn dead workers.

        One thread doubles as the retry scheduler (tasks waiting out a
        backoff live in a heap, not in the queue — an instantly-failing
        task cannot starve healthy work) and the worker supervisor (a
        thread that died mid-task leaves the task in ``_executing``; it is
        recovered through the normal failure path, and the thread is
        replaced).  Exits once the service is closed and the heap is empty.
        """
        respawn_ids = itertools.count(1)
        while True:
            fire: "list[_Task]" = []
            recovered: "list[_Task]" = []
            with self._supervisor_cv:
                now = time.monotonic()
                while self._retries and (self._closed or self._retries[0][0] <= now):
                    fire.append(heapq.heappop(self._retries)[2])
                for index, thread in enumerate(self._threads):
                    if thread.is_alive():
                        continue
                    task = self._executing.pop(thread.name, None)
                    if task is not None:
                        recovered.append(task)
                    if not self._closed:
                        replacement = threading.Thread(
                            target=self._worker_loop,
                            name=f"{self.name}-worker-{index}-r{next(respawn_ids)}",
                            daemon=True,
                        )
                        self._threads[index] = replacement
                        self._counters["respawns"] += 1
                        replacement.start()
                if not fire and not recovered:
                    if self._closed and not self._retries:
                        return
                    timeout = self.supervision_interval
                    if self._retries:
                        timeout = min(timeout, max(0.001, self._retries[0][0] - now))
                    self._supervisor_cv.wait(timeout)
                    continue
            for task in fire:
                self._queue.put(task)  # still counted outstanding since _enqueue
            for task in recovered:
                self._handle_failure(task, ServiceError("worker thread died mid-task"))

    # -- clients -----------------------------------------------------------------

    def client(
        self,
        machine: "MachineConfig | SimulatedMachine",
        seed: int = 0,
        objective: "str | Objective" = "cycles",
        fallback: bool = False,
        timeout: float | None = None,
    ) -> "ServiceClient":
        """A cost-engine-compatible client bound to one machine and seed.

        ``fallback=True`` arms graceful degradation: when the service
        cannot answer (failed work, a timeout, or a closed service), the
        client evaluates through a private serial engine instead —
        bit-identical results, no shared dedup.  ``timeout`` bounds each
        submission's wait.
        """
        return ServiceClient(
            self, machine, seed=seed, objective=objective,
            fallback=fallback, timeout=timeout,
        )

    # -- lifecycle ---------------------------------------------------------------

    def drain(self) -> None:
        """Block until every accepted task is terminal.

        Unlike a bare queue join, this also covers tasks parked in the
        retry heap and tasks being recovered from a dead worker — a task
        counts until it either completed or reached quarantine.
        """
        with self._work_cv:
            self._work_cv.wait_for(lambda: self._outstanding == 0)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker fleet and the supervisor (idempotent).

        ``wait=True`` (the default, the graceful path) drains first, so
        every accepted task reaches a terminal state — note that retries
        stop being *scheduled* once shutdown begins (tasks already waiting
        out a backoff fire immediately, tasks failing during the drain go
        straight to quarantine).  ``wait=False`` refuses new work, drops
        scheduled retries and stops workers after their current task;
        waiters of anything unfinished receive a :class:`ServiceError`.
        """
        with self._lock:
            if self._closed and not self._threads:
                return
            already_closing = self._closed
            self._closed = True
            dropped = 0
            if not wait:
                dropped = len(self._retries)
                self._retries.clear()
            self._supervisor_cv.notify_all()
        for _ in range(dropped):
            self._finish_task()  # their waiters get the shutdown error below
        if wait and not already_closing:
            self.drain()
        supervisor, self._supervisor = self._supervisor, None
        if supervisor is not None:
            with self._supervisor_cv:
                self._supervisor_cv.notify_all()
            supervisor.join()
        threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join()
        # Fail anything still pending (non-graceful shutdown only).
        with self._lock:
            leftovers = list(self._inflight.values()) + list(
                self._measure_inflight.values()
            )
            self._inflight.clear()
            self._measure_inflight.clear()
            self._executing.clear()
            self._outstanding = 0
            self._work_cv.notify_all()
        for entry in leftovers:
            if not entry.event.is_set():
                entry.error = ServiceError(f"{self.name} shut down")
                entry.event.set()
        close_backend = getattr(self.backend, "close", None)
        if callable(close_backend):
            close_backend()
        if self._owns_store:
            close_store = getattr(self.store, "close", None)
            if callable(close_store):
                close_store()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    # -- observability -----------------------------------------------------------

    def attach_fleet(self, view) -> None:
        """Attach a fleet membership view; stats/health gain fleet fields.

        ``view`` is a :class:`~repro.runtime.fleet.FleetView` (anything
        with ``members`` and ``healthy_count()`` works) — attached by
        :meth:`~repro.runtime.transport.ServiceServer.join_fleet`.
        """
        self._fleet = view

    def note_fleet(self, redirects: int = 0, failovers: int = 0) -> None:
        """Count fleet routing events (owner-redirect hops, local adoptions)."""
        with self._lock:
            self._counters["redirects"] += int(redirects)
            self._counters["failovers"] += int(failovers)

    def _fleet_membership(self) -> "tuple[int, int]":
        view = self._fleet
        if view is None:
            return 0, 0
        return len(view.members), view.healthy_count()

    def stats(self) -> ServiceStats:
        """A consistent snapshot of queue, dedup, measurement and shard state."""
        with self._lock:
            counters = dict(self._counters)
            in_flight = len(self._inflight) + len(self._measure_inflight)
            quarantined = len(self._quarantine)
            scheduled = len(self._retries)
            next_eta = (
                max(0.0, self._retries[0][0] - time.monotonic())
                if self._retries
                else None
            )
        shard_stats = getattr(self.store, "shard_stats", None)
        shards = tuple(shard_stats()) if callable(shard_stats) else ()
        members, members_healthy = self._fleet_membership()
        return ServiceStats(
            jobs=counters["jobs"],
            queue_depth=self._queue.qsize(),
            in_flight=in_flight,
            store_hits=counters["store_hits"],
            dedup_savings=counters["dedup_savings"],
            measured=counters["measured"],
            model_evaluations=counters["model_evaluations"],
            wall_evaluations=counters["wall_evaluations"],
            retries=counters["retries"],
            failures=counters["failures"],
            workers=len(self._threads),
            quarantined=quarantined,
            respawns=counters["respawns"],
            scheduled_retries=scheduled,
            retrying=scheduled,
            next_retry_eta=next_eta,
            resubmits=counters["resubmits"],
            members=members,
            members_healthy=members_healthy,
            redirects=counters["redirects"],
            failovers=counters["failovers"],
            shards=shards,
        )

    def health(self) -> ServiceHealth:
        """Liveness snapshot: worker fleet, retry backlog, quarantine.

        ``degraded`` means the service is still answering but something
        needs attention — dead workers awaiting respawn, dead-lettered
        tasks, or a non-empty retry heap (work is failing and waiting out
        backoff; ``stats().retrying``/``next_retry_eta`` quantify it).
        ``closed`` is terminal; clients with ``fallback=True`` route
        around it without submitting.
        """
        with self._lock:
            threads = list(self._threads)
            alive = sum(1 for thread in threads if thread.is_alive())
            closed = self._closed
            quarantined = len(self._quarantine)
            scheduled = len(self._retries)
            respawns = self._counters["respawns"]
        if closed:
            state = "closed"
        elif alive < len(threads) or quarantined or scheduled:
            state = "degraded"
        else:
            state = "ok"
        members, members_healthy = self._fleet_membership()
        return ServiceHealth(
            state=state,
            alive_workers=alive,
            expected_workers=len(threads),
            queue_depth=self._queue.qsize(),
            scheduled_retries=scheduled,
            quarantined=quarantined,
            respawns=respawns,
            members=members,
            members_healthy=members_healthy,
        )

    def __repr__(self) -> str:
        return (
            f"CampaignService({self.name!r}, workers={len(self._threads)}, "
            f"backend={getattr(self.backend, 'name', type(self.backend).__name__)}, "
            f"store={self.store!r}, {self.stats().describe()})"
        )


class ServiceClient:
    """A drop-in :class:`~repro.runtime.cost_engine.CostEngine` over a service.

    Implements the engine surface the search strategies and sessions consume
    — ``records`` / ``batch`` / ``__call__`` / ``cost(objective)`` and the
    ``evaluations``/``measured`` counter pair — but every acquisition routes
    through the shared :class:`CampaignService`, so any number of clients
    (across threads and sessions) trigger exactly one real measurement per
    distinct ``(machine_hash, plan_key, seed)``.  ``measured`` counts the
    acquisitions *this* client's submissions enqueued; work served from the
    shared store or deduped against another client is free here, exactly as
    cache hits are free on a private engine.

    ``fallback=True`` arms **graceful degradation**: when the service
    cannot answer — the submission failed after retries (quarantined
    work), the client's ``timeout`` expired, or the service is closed —
    the client evaluates the batch through a lazily-built private
    :class:`~repro.runtime.cost_engine.CostEngine` instead.  The private
    engine derives the very same per-plan noise seeds from the same
    ``seed``, reads (but never writes) the service's store, and therefore
    returns **bit-identical** records; ``fallbacks`` counts how often the
    degraded path served a batch.
    """

    def __init__(
        self,
        service: CampaignService,
        machine: "MachineConfig | SimulatedMachine",
        seed: int = 0,
        objective: "str | Objective" = "cycles",
        fallback: bool = False,
        timeout: float | None = None,
    ):
        self.service = service
        self.config = machine.config if isinstance(machine, SimulatedMachine) else machine
        if not isinstance(self.config, MachineConfig):
            raise TypeError(f"cannot interpret {machine!r} as a machine")
        self.seed = int(seed)
        self.objective = resolve_objective(objective)
        self.fallback = bool(fallback)
        self.timeout = timeout
        self.key = CostLogKey(
            machine_hash=service._hash_for(self.config), seed=self.seed
        )
        #: Plan-cost requests served (cache hits included).
        self.evaluations = 0
        #: Acquisitions this client's submissions put on the service queue.
        self.measured = 0
        #: Batches the degraded (private-engine) path served.
        self.fallbacks = 0
        self._fallback_engine: "CostEngine | None" = None

    def _degraded_engine(self) -> CostEngine:
        """The private engine behind ``fallback=True`` (built on first use).

        Same machine configuration, same seed — hence the same
        ``derive_seed(seed, "plan-cost", plan_key)`` noise draws and
        bit-identical records.  Its store is a read-only view of the
        service's, so whatever the service *did* manage to persist is
        served from cache and only the rest is measured locally; nothing
        is written (the service stays the store's single writer).
        """
        if self._fallback_engine is None:
            self._fallback_engine = CostEngine(
                SimulatedMachine(self.config),
                objective=self.objective,
                backend=BatchedBackend(),
                store=ServiceStoreView(self.service.store),
                seed=self.seed,
            )
        return self._fallback_engine

    def _degraded_records(
        self, plans: Sequence[Plan], names: "tuple[str, ...]"
    ) -> "list[CostRecord]":
        engine = self._degraded_engine()
        self.fallbacks += 1
        before = engine.measured
        records = engine.records(list(plans), names)
        self.measured += engine.measured - before
        return records

    def records(
        self, plans: Sequence[Plan], metrics: Sequence[str] | None = None
    ) -> "list[CostRecord]":
        """Cost records of ``plans`` in order, via the service.

        With ``fallback`` armed, a batch the service cannot complete is
        served by the private engine instead of raising.
        """
        names = tuple(metrics) if metrics is not None else self.objective.metrics
        self.evaluations += len(plans)
        if self.fallback and self.service.health().state == "closed":
            return self._degraded_records(plans, names)
        try:
            ticket = self.service.submit(
                CampaignJob(self.config, tuple(plans), names, self.seed)
            )
            result = ticket.result(timeout=self.timeout)
        except ServiceError:
            if not self.fallback:
                raise
            return self._degraded_records(plans, names)
        self.measured += ticket.owned_units
        return result

    def cost(self, objective: "str | Objective") -> ObjectiveCost:
        """Bind ``objective`` to this client as a drop-in cost function."""
        return ObjectiveCost(self, resolve_objective(objective))

    def batch(self, plans: Sequence[Plan]) -> "list[float]":
        """Default-objective costs of ``plans`` in order."""
        records = self.records(plans)
        value = self.objective.value
        return [value(record.values) for record in records]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    def flush(self) -> None:
        """Compat no-op: the service persists records as they are acquired."""
        return None

    def compact(self) -> None:
        """Compact this client's shard in the service's store."""
        self.service.store.compact_cost_records(self.key)

    def close(self) -> None:
        """Release client-held resources (idempotent).

        Closes the lazily-built fallback engine's backend, if degradation
        ever fired.  The shared service itself is untouched — its lifecycle
        belongs to whoever started it.
        """
        engine, self._fallback_engine = self._fallback_engine, None
        if engine is not None:
            close = getattr(engine.backend, "close", None)
            if callable(close):
                close()

    def __repr__(self) -> str:
        return (
            f"ServiceClient(machine={self.config.name!r}, seed={self.seed}, "
            f"objective={self.objective.describe()!r}, "
            f"{self.measured}/{self.evaluations} measured, "
            f"service={self.service.name!r})"
        )


class ServiceBackend:
    """An :class:`~repro.runtime.backends.ExecutionBackend` over a service.

    Lets the existing campaign driver (``run_campaign``, ``measure_plans``)
    execute through a shared :class:`CampaignService`: every unit batch gains
    the service's cross-client dedup, so two sessions measuring the same
    campaign concurrently perform each unit's work once.
    """

    name = "service"

    def __init__(self, service: CampaignService):
        self.service = service

    def measure_units(
        self, machine: SimulatedMachine, units: Sequence[WorkUnit]
    ) -> "list[Measurement]":
        return self.service.measure_units(machine.config, units)

    def close(self) -> None:
        """No-op: the shared service's lifecycle belongs to its owner."""
        return None

    def __repr__(self) -> str:
        return f"ServiceBackend({self.service.name!r})"


class ServiceStoreView:
    """A client session's view of the service's store: read-through, no record writes.

    The service is its store's single record-log writer; a client session
    holding this view reads campaign tables and cost records as usual, while
    record appends become no-ops (whatever a client acquired *through the
    service* is already persisted by the service itself).  Campaign-table
    ``put`` passes through — tables are atomic whole-file writes with no
    writer discipline to protect.
    """

    def __init__(self, store: CampaignStore):
        self._store = store

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return self._store.get(key)

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        self._store.put(key, table)

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        return self._store.get_cost_records(key)

    def append_cost_records(
        self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]
    ) -> None:
        return None  # the service already persisted everything it acquired

    def compact_cost_records(self, key: CostLogKey) -> None:
        return None  # shard maintenance belongs to the service

    def get_cost_table(self, key) -> "dict[str, float] | None":
        return self._store.get_cost_table(key)

    def put_cost_table(self, key, costs: "dict[str, float]") -> None:
        return None

    def clear(self) -> None:
        return None  # a tenant must not clear the shared store

    def __repr__(self) -> str:
        return f"ServiceStoreView({self._store!r})"


def serve(
    store: "str | CampaignStore | None" = None,
    backend: "str | ExecutionBackend" = "batched",
    workers: int = 2,
    **kwargs: object,
) -> CampaignService:
    """Start a :class:`CampaignService` (the ``repro.serve(...)`` entry point).

    >>> service = repro.serve(store="./campaigns", workers=4)
    >>> a = repro.Session.connect(service)
    >>> b = repro.Session.connect(service)          # shares a's measurements
    >>> best = a.search(14)                          # measured once, total
    >>> service.stats().measured                     # real work, fleet-wide
    """
    from repro.runtime.backends import resolve_backend

    return CampaignService(
        store=store, backend=resolve_backend(backend), workers=workers, **kwargs
    )
