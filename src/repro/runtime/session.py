"""The session façade: one object owning machine, scale, backend and store.

``repro.session(...)`` is the package's single entry point for running the
paper's evaluation: it resolves machine/scale/backend/store presets, and the
returned :class:`Session` runs campaigns, canonical sweeps, searches and every
figure of the paper through the configured runtime::

    import repro

    sess = repro.session(machine="default", scale="default", backend="multiprocess")
    table = sess.large_table()          # campaign via the backend + store
    results = sess.run_all()            # all eleven figures end-to-end
    best = sess.search(10)              # DP-best plan on this machine

Campaign results flow through the session's :class:`~repro.runtime.store.CampaignStore`,
so a session configured with ``store="./campaigns"`` persists its tables to
disk and a later process (or CI job) completes the same campaigns via cache
hits without re-measuring anything.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.config import ExperimentScale, ci_scale, default_scale, paper_scale
from repro.machine.configs import MACHINE_PRESETS
from repro.machine.machine import MachineConfig, SimulatedMachine
from repro.runtime.backends import (
    BatchedBackend,
    ExecutionBackend,
    SerialBackend,
    resolve_backend,
)
from repro.runtime.campaigns import measure_plan_list, run_campaign
from repro.runtime.cost_engine import CostEngine
from repro.runtime.objectives import Objective
from repro.runtime.store import CampaignStore, resolve_store
from repro.runtime.table import MeasurementTable
from repro.search import (
    ExhaustiveSearch,
    MeasuredCyclesCost,
    RandomSearch,
    SearchResult,
    dp_best_plan,
)
from repro.util.rng import derive_seed
from repro.wht.plan import MAX_UNROLLED, Plan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.experiments.canonical import CanonicalSweep
    from repro.experiments.runner import ExperimentSuite
    from repro.runtime.fleet import FleetClient
    from repro.runtime.service import CampaignService, ServiceClient
    from repro.runtime.transport import RemoteServiceClient

__all__ = ["Session", "session", "SCALE_PRESETS"]

#: Mapping of scale names accepted by :func:`session` to factories.
SCALE_PRESETS = {
    "default": default_scale,
    "paper": paper_scale,
    "ci": ci_scale,
}


def _resolve_machine(spec: "str | MachineConfig | SimulatedMachine") -> SimulatedMachine:
    if isinstance(spec, SimulatedMachine):
        return spec
    if isinstance(spec, MachineConfig):
        return SimulatedMachine(spec)
    if isinstance(spec, str):
        try:
            factory = MACHINE_PRESETS[spec]
        except KeyError:
            raise ValueError(
                f"unknown machine preset {spec!r}; available: {sorted(MACHINE_PRESETS)}"
            ) from None
        return SimulatedMachine(factory())
    raise TypeError(f"cannot interpret {spec!r} as a machine")


def _resolve_scale(spec: "str | ExperimentScale") -> ExperimentScale:
    if isinstance(spec, ExperimentScale):
        return spec
    if isinstance(spec, str):
        try:
            return SCALE_PRESETS[spec]()
        except KeyError:
            raise ValueError(
                f"unknown scale preset {spec!r}; available: {sorted(SCALE_PRESETS)}"
            ) from None
    raise TypeError(f"cannot interpret {spec!r} as an experiment scale")


class Session:
    """One machine + one scale + one backend + one store, fluent on top.

    Campaign tables are memoised per session *object* (so repeated figure
    methods share them by identity) and cached in the session's store (so
    other sessions — including ones in other processes, for a disk store —
    reuse the completed measurement work).
    """

    def __init__(
        self,
        machine: SimulatedMachine,
        scale: ExperimentScale,
        backend: ExecutionBackend,
        store: CampaignStore,
        dp_max_children: int | None = 2,
        service: "CampaignService | None" = None,
        service_fallback: bool = False,
        remote_url: "str | Sequence[str] | None" = None,
        remote_options: "dict | None" = None,
    ):
        self.machine = machine
        self.scale = scale
        self.service = service
        #: Connected sessions only: arm the client's graceful degradation
        #: (evaluate through a private engine when the service can't answer).
        self.service_fallback = bool(service_fallback)
        #: Remote sessions only: the ``tcp://`` / ``unix://`` server URL the
        #: cost engine dials — or a *list* of URLs, making the engine a
        #: :class:`~repro.runtime.fleet.FleetClient` striping over the
        #: member ring — plus keyword options for its transport(s).
        self.remote_url = remote_url
        self.remote_options = dict(remote_options or {})
        if service is not None:
            # A tenant session: every measurement routes through the shared
            # service (cross-session dedup), reads come through the service's
            # store, and record writes stay with the service — the store's
            # single writer.  Explicit backend/store arguments are ignored in
            # favour of the service's; use a plain session to opt out.
            from repro.runtime.service import ServiceBackend, ServiceStoreView

            backend = ServiceBackend(service)
            store = ServiceStoreView(service.store)
        self.backend = backend
        self.store = store
        self.dp_max_children = dp_max_children
        self._tables: dict[tuple[int, int, int, int | None], MeasurementTable] = {}
        self._sweep: "CanonicalSweep | None" = None
        self._suite: "ExperimentSuite | None" = None
        self._cost_engine: "CostEngine | ServiceClient | RemoteServiceClient | FleetClient | None" = None

    @classmethod
    def connect(
        cls,
        service: "CampaignService | str | Sequence[str]",
        machine: "str | MachineConfig | SimulatedMachine" = "default",
        scale: "str | ExperimentScale" = "default",
        *,
        dp_max_children: int | None = 2,
        fallback: bool = False,
        **transport_options: Any,
    ) -> "Session":
        """A session whose measurement work all flows through ``service``.

        Any number of connected sessions — across threads, with a shared
        disk-backed service even across processes — share the service's job
        queue, in-flight dedup and record shards, so overlapping work is
        measured exactly once fleet-wide::

            service = repro.serve(store="./campaigns", workers=4)
            a = repro.Session.connect(service)
            b = repro.Session.connect(service)   # b reuses a's measurements

        ``service`` may also be a **URL** — ``"tcp://host:port"`` or
        ``"unix://path"`` naming a :func:`repro.serve_tcp` /
        :func:`repro.serve_unix` server — and the session becomes a remote
        tenant: its cost engine is a
        :class:`~repro.runtime.transport.RemoteServiceClient` speaking the
        frame protocol, with supervised reconnect, heartbeats and
        idempotent resubmission, and ``dp_search`` stays bit-identical to
        a local run.  Extra keyword arguments (``timeout``,
        ``max_attempts``, ``backoff_base``, ``fault_plan``, ...) configure
        the transport.  Campaign tables still measure locally in a remote
        session — only the cost engine crosses the wire.

        A **list** of URLs makes the session a fleet tenant::

            sess = repro.Session.connect(["tcp://a:9001", "tcp://b:9001"])

        Its cost engine is a :class:`~repro.runtime.fleet.FleetClient`
        striping every batch across the member servers by
        ``(machine_hash, plan_key)`` over a rendezvous ring — still
        bit-identical to a serial engine, and the search survives any
        single member dying or draining mid-flight (keys rehash to the
        survivors; the shared record space keeps measurements unique).

        ``fallback=True`` arms graceful degradation on the session's
        client: batches the service cannot answer (quarantined work, a
        closed or draining service, a dead wire past the reconnect
        budget) are evaluated through a private engine, bit-identical to
        the service path — the session's searches then survive an
        unhealthy service instead of raising.
        """
        resolved = _resolve_machine(machine)
        if isinstance(service, (list, tuple)):
            if not service or not all(isinstance(url, str) for url in service):
                raise TypeError(
                    "a fleet connect list must be a non-empty list of URL strings"
                )
            service = tuple(service) if len(service) > 1 else service[0]
        if isinstance(service, (str, tuple)):
            from repro.runtime.store import MemoryStore

            return cls(
                machine=resolved,
                scale=_resolve_scale(scale),
                backend=BatchedBackend(),
                store=MemoryStore(),
                dp_max_children=dp_max_children,
                service_fallback=fallback,
                remote_url=service,
                remote_options=transport_options,
            )
        if transport_options:
            unexpected = ", ".join(sorted(transport_options))
            raise TypeError(
                f"transport options ({unexpected}) only apply when connecting "
                "to a tcp:// or unix:// URL"
            )
        return cls(
            machine=resolved,
            scale=_resolve_scale(scale),
            backend=service.backend,  # replaced by __init__; kept for clarity
            store=service.store,
            dp_max_children=dp_max_children,
            service=service,
            service_fallback=fallback,
        )

    # -- campaigns ---------------------------------------------------------------

    def campaign(
        self,
        n: int,
        count: int | None = None,
        *,
        max_leaf: int = MAX_UNROLLED,
        max_children: int | None = None,
    ) -> MeasurementTable:
        """Measure ``count`` RSU samples of size ``2^n`` via backend + store.

        ``count`` defaults to the scale's sample count; ``max_leaf`` and
        ``max_children`` constrain the RSU sampler (the full ``SampleCampaign``
        surface, so migrating callers lose nothing).
        """
        effective = count if count is not None else self.scale.sample_count
        memo_key = (n, effective, max_leaf, max_children)
        table = self._tables.get(memo_key)
        if table is None:
            table = run_campaign(
                self.machine,
                n,
                effective,
                seed=self.scale.seed,
                max_leaf=max_leaf,
                max_children=max_children,
                backend=self.backend,
                store=self.store,
            )
            self._tables[memo_key] = table
        return table

    def small_table(self) -> MeasurementTable:
        """The in-cache random-sample campaign (paper size 2^9)."""
        return self.campaign(self.scale.small_size)

    def large_table(self) -> MeasurementTable:
        """The out-of-cache random-sample campaign (paper size 2^18)."""
        return self.campaign(self.scale.large_size)

    def measure_plans(
        self, plans: Iterable[Plan], tag: str = "explicit", cache: bool = True
    ) -> MeasurementTable:
        """Measure an explicit list of plans (all of one size).

        With ``cache=True`` (the default) the table is store-native: it is
        keyed by a digest of the plan list (plus ``tag`` and the scale seed)
        in the session's store, so a later session over the same store serves
        the same list without re-measuring.  Noise seeds are derived per
        ``(seed, tag, n, index)``, so the cached table is bit-identical to a
        fresh measurement; ``cache=False`` restores the uncached behaviour.
        """
        return measure_plan_list(
            self.machine,
            plans,
            seed=self.scale.seed,
            tag=tag,
            backend=self.backend,
            store=self.store if cache else None,
        )

    # -- sweeps and searches -----------------------------------------------------

    def canonical_sweep(self) -> "CanonicalSweep":
        """Canonical + DP-best measurements across the Figure 1–3 sizes."""
        if self._sweep is None:
            from repro.experiments.canonical import canonical_sweep

            sizes = range(1, self.scale.canonical_max_size + 1)
            self._sweep = canonical_sweep(
                self.machine, sizes, dp_max_children=self.dp_max_children
            )
        return self._sweep

    def cost_engine(self) -> "CostEngine | ServiceClient | RemoteServiceClient | FleetClient":
        """The session's batched multi-metric cost engine (memoised).

        The engine evaluates candidate batches through the session's backend
        and persists every acquired metric value in the session's store as
        append-log records keyed by ``(machine content hash, plan key)``, so
        a later session over the same store resumes a search with zero
        re-measurement — for *any* objective over already-known metrics.
        Note the engine seeds measurement noise per plan (order-independent)
        rather than from the machine's shared generator; on a noise-free
        machine both schemes coincide exactly.

        A session on the plain serial backend hands the engine the fused
        :class:`~repro.runtime.backends.BatchedBackend` instead (bit-identical
        results, one cross-plan prepared workload per candidate round);
        multiprocess and custom backends pass through unchanged.

        A *connected* session (:meth:`connect`) returns a
        :class:`~repro.runtime.service.ServiceClient` instead — the same
        engine surface, but every acquisition routes through the shared
        :class:`~repro.runtime.service.CampaignService`, deduped against
        every other tenant.  The noise-seed derivation is identical, so a
        connected search is bit-identical to a private engine's.  A
        *remote* session (:meth:`connect` with a URL) returns a
        :class:`~repro.runtime.transport.RemoteServiceClient` — the same
        surface again, over a supervised socket.
        """
        if self._cost_engine is None:
            seed = derive_seed(self.scale.seed, "cost-engine")
            if self.remote_url is not None:
                if isinstance(self.remote_url, (list, tuple)):
                    from repro.runtime.fleet import FleetClient

                    self._cost_engine = FleetClient(
                        self.remote_url,
                        self.machine.config,
                        seed=seed,
                        fallback=self.service_fallback,
                        **self.remote_options,
                    )
                else:
                    from repro.runtime.transport import RemoteServiceClient

                    self._cost_engine = RemoteServiceClient(
                        self.remote_url,
                        self.machine.config,
                        seed=seed,
                        fallback=self.service_fallback,
                        **self.remote_options,
                    )
            elif self.service is not None:
                self._cost_engine = self.service.client(
                    self.machine.config, seed=seed, fallback=self.service_fallback
                )
            else:
                backend = self.backend
                if type(backend) is SerialBackend:
                    # Exact-type check: a SerialBackend *subclass* is a custom
                    # backend and passes through unchanged.
                    backend = BatchedBackend()
                self._cost_engine = CostEngine(
                    self.machine,
                    backend=backend,
                    store=self.store,
                    seed=seed,
                )
        return self._cost_engine

    def search(
        self,
        n: int,
        strategy: str = "dp",
        use_engine: bool = False,
        objective: "str | Objective | None" = None,
        **kwargs: Any,
    ) -> SearchResult:
        """Search the algorithm space of exponent ``n`` on this machine.

        ``strategy`` selects the search family: ``"dp"`` (the WHT package's
        dynamic programming, the default), ``"random"`` (RSU sampling) or
        ``"exhaustive"``; extra keyword arguments go to the strategy.

        ``objective`` selects *what* the search optimises: a metric name
        (``"cycles"``, ``"l1_misses"``, ``"model_instructions"``, ...) or an
        :class:`~repro.runtime.objectives.Objective` such as the paper's
        composite ``WeightedObjective.combined(alpha, beta)``.  Objectives
        always evaluate through :meth:`cost_engine` — batched through the
        session's backend, with the persistent per-plan record cache —
        and every objective bound to this session shares that cache, so
        switching objectives re-measures nothing already known.

        ``use_engine=True`` (without an objective) evaluates the default
        measured-cycles objective through the engine instead of a fresh
        per-call :class:`~repro.search.costs.MeasuredCyclesCost`;
        ``session.search(n, use_engine=True, objective="cycles")`` is
        bit-identical to that path.
        """
        if objective is not None:
            if "cost" in kwargs:
                raise ValueError("pass either cost= or objective=, not both")
            kwargs["cost"] = self.cost_engine().cost(objective)
        elif use_engine or self.service is not None:
            # Connected sessions always evaluate through the service-backed
            # engine — that is where cross-session dedup lives.
            kwargs.setdefault("cost", self.cost_engine())
        if strategy == "dp":
            kwargs.setdefault("max_children", self.dp_max_children)
            return dp_best_plan(self.machine, n, **kwargs)
        cost = kwargs.pop("cost", None) or MeasuredCyclesCost(self.machine)
        if strategy == "random":
            rng = kwargs.pop("rng", derive_seed(self.scale.seed, "search", n))
            return RandomSearch(cost=cost, **kwargs).search(n, rng=rng)
        if strategy == "exhaustive":
            return ExhaustiveSearch(cost=cost, **kwargs).search(n)
        raise ValueError(
            f"unknown search strategy {strategy!r}; available: dp, random, exhaustive"
        )

    # -- figures -----------------------------------------------------------------

    def suite(self) -> "ExperimentSuite":
        """The figure-level experiment suite bound to this session."""
        if self._suite is None:
            from repro.experiments.runner import ExperimentSuite

            self._suite = ExperimentSuite.from_session(self)
        return self._suite

    def run_all(self) -> dict[str, Any]:
        """Run all eleven paper figures plus the summary tables."""
        return self.suite().run_all()

    def render_report(self) -> str:
        """Human-readable report covering every figure."""
        return self.suite().render_report()

    def write_experiments_report(self, path: str) -> str:
        """Write the full report to ``path`` and return the text."""
        return self.suite().write_experiments_report(path)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Release resources held by the session (idempotent).

        A :class:`~repro.runtime.backends.MultiprocessBackend` keeps its
        worker pool alive across measurement batches; closing the session
        shuts the pool down.  A connected session's
        :class:`~repro.runtime.service.ServiceClient` holds a lazily-built
        fallback engine, and a remote session's
        :class:`~repro.runtime.transport.RemoteServiceClient` holds a
        socket, a heartbeat thread and a fallback engine — closing the
        session closes all of them (the shared service itself is not the
        session's to stop).  The session remains usable afterwards — the
        next batch starts a fresh pool, the next engine use redials.
        """
        engine, self._cost_engine = self._cost_engine, None
        close_engine = getattr(engine, "close", None)
        if callable(close_engine):
            close_engine()
        elif engine is not None:
            self._cost_engine = engine  # a plain CostEngine keeps its cache
        close = getattr(self.backend, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    def describe(self) -> str:
        """One-line summary of the session's configuration."""
        return (
            f"Session(machine={self.machine.config.name!r}, "
            f"scale=[{self.scale.describe()}], "
            f"backend={getattr(self.backend, 'name', type(self.backend).__name__)}, "
            f"store={self.store!r})"
        )

    def __repr__(self) -> str:
        return self.describe()


def session(
    machine: "str | MachineConfig | SimulatedMachine" = "default",
    scale: "str | ExperimentScale" = "default",
    backend: "str | ExecutionBackend" = "serial",
    store: "str | CampaignStore | None" = "memory",
    *,
    dp_max_children: int | None = 2,
    service: "CampaignService | None" = None,
    service_fallback: bool = False,
) -> Session:
    """Create a :class:`Session` from presets or concrete objects.

    Parameters
    ----------
    machine:
        Preset name (``"default"``, ``"opteron"``, ``"tiny"``, ...), a
        :class:`MachineConfig`, or a ready :class:`SimulatedMachine`.
    scale:
        ``"default"``, ``"paper"``, ``"ci"``, or an :class:`ExperimentScale`.
    backend:
        ``"serial"``, ``"multiprocess"``, ``"batched"``, or an
        :class:`ExecutionBackend` instance.
    store:
        ``"memory"`` (shared in-process store), ``"none"``/``None`` (no
        caching), a directory path for a persistent
        :class:`~repro.runtime.store.DiskStore`, or a store instance.
    service:
        A :class:`~repro.runtime.service.CampaignService` to connect to.
        When given, the service's backend and store replace the ``backend``
        and ``store`` arguments (see :meth:`Session.connect`).
    service_fallback:
        Connected sessions only: arm the client's graceful degradation
        (see :meth:`Session.connect`'s ``fallback``).
    """
    return Session(
        machine=_resolve_machine(machine),
        scale=_resolve_scale(scale),
        backend=resolve_backend(backend),
        store=resolve_store(store),
        dp_max_children=dp_max_children,
        service=service,
        service_fallback=service_fallback,
    )
