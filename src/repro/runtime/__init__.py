"""Execution runtime: backends, campaign stores and the session façade.

This subpackage separates *what* is measured (plans, seeds, machine
configurations) from *how and where* it executes and *where the results
live*:

* :mod:`repro.runtime.table` — :class:`MeasurementTable`, the durable
  column-oriented result of a campaign (exact ``as_dict``/``from_dict``
  round-trip);
* :mod:`repro.runtime.backends` — the :class:`ExecutionBackend` protocol and
  the serial / multiprocess / batched implementations, all bit-identical for
  the same work units;
* :mod:`repro.runtime.store` — the :class:`CampaignStore` protocol with
  in-memory and on-disk implementations, keyed by a content hash of the full
  machine configuration; per-plan costs persist in an append-log record
  store (O(batch) appends, compaction, transparent migration of old-format
  single-metric tables);
* :mod:`repro.runtime.metrics` — the :class:`MetricSpec` registry of named
  cost metrics (hardware counters, wall time, analytic batch models) and the
  multi-metric :class:`CostRecord`;
* :mod:`repro.runtime.objectives` — composable :class:`Objective`\\ s mapping
  metric records to the scalar a search optimises (single metric, the
  paper's weighted ``alpha*I + beta*M`` composite, custom reducers);
* :mod:`repro.runtime.campaigns` — the deterministic campaign driver that
  samples plans, derives per-sample noise seeds and routes work units through
  a backend and a store;
* :mod:`repro.runtime.cost_engine` — :class:`CostEngine`, batched
  multi-metric plan evaluation: one measurement populates every hardware
  counter metric at once, model metrics never touch the machine, and every
  record lands in the persistent per-plan record log;
* :mod:`repro.runtime.session` — :class:`Session` / :func:`session`, the
  fluent top-level entry point owning machine, scale, backend and store;
* :mod:`repro.runtime.sharded_store` — :class:`ShardedRecordStore`, the
  record log sharded per ``(machine_hash, seed)`` with one locked writer per
  shard, lock-free readers and background compaction;
* :mod:`repro.runtime.service` — :class:`CampaignService` / :func:`serve`,
  the multi-tenant measurement service: a job queue deduping work by
  ``(machine_hash, plan_key, seed, channel)``, a worker fleet draining it
  through an :class:`ExecutionBackend`, and cost-engine-compatible
  :class:`ServiceClient`\\ s for any number of concurrent sessions
  (``Session.connect``);
* :mod:`repro.runtime.transport` — the multi-host wire: length-prefixed
  JSON frames over TCP / Unix sockets (:func:`serve_tcp`,
  :func:`serve_unix`), a supervised :class:`RemoteServiceClient` with
  reconnect, heartbeats, idempotent request ids and graceful drain
  handling, and :class:`FaultyTransport` extending the fault plan's chaos
  discipline to the network (``Session.connect("tcp://host:port")``);
* :mod:`repro.runtime.faults` — deterministic fault injection
  (:class:`FaultPlan`) across backend, store, network and fleet sites, so
  the failure discipline above is testable bit-for-bit;
* :mod:`repro.runtime.fleet` — :class:`FleetClient`
  (``Session.connect(["tcp://a", "tcp://b"])``), the many-server client:
  rendezvous-hash striping over a member ring, membership health probing
  with gossip, client-side failover and server-side shard-ownership
  handoff, all sharing one record space so any single member can die
  mid-search without duplicating a measurement.
"""

from repro.runtime.backends import (
    BACKEND_PRESETS,
    BatchedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    SerialBackend,
    WorkUnit,
    resolve_backend,
)
from repro.runtime.campaigns import (
    campaign_key,
    measure_plan_list,
    run_campaign,
    sample_units,
)
from repro.runtime.cost_engine import CostEngine, ObjectiveCost
from repro.runtime.faults import (
    FaultDecision,
    FaultPlan,
    FaultSpec,
    FaultyBackend,
    FaultyStore,
    InjectedCrash,
    InjectedFault,
)
from repro.runtime.fleet import (
    FleetClient,
    FleetView,
    MembershipRegistry,
    ring_assign,
    ring_owner,
    ring_weight,
)
from repro.runtime.metrics import (
    CostRecord,
    MetricSpec,
    available_metrics,
    counter_metric_names,
    has_counter_values,
    hardware_metric_names,
    metric_spec,
    model_metric_names,
    register_metric,
)
from repro.runtime.objectives import (
    CustomObjective,
    MetricObjective,
    Objective,
    WeightedObjective,
    resolve_objective,
)
from repro.runtime.service import (
    CampaignJob,
    CampaignService,
    JobTicket,
    QuarantineEntry,
    ServiceBackend,
    ServiceClient,
    ServiceError,
    ServiceHealth,
    ServiceStats,
    ServiceStoreView,
    serve,
)
from repro.runtime.session import SCALE_PRESETS, Session, session
from repro.runtime.sharded_store import ShardedRecordStore, ShardStats
from repro.runtime.store import (
    CampaignKey,
    CampaignStore,
    CostLogKey,
    CostTableKey,
    DiskStore,
    MemoryStore,
    NullStore,
    default_memory_store,
    machine_config_hash,
    resolve_store,
)
from repro.runtime.table import TABLE_COLUMNS, MeasurementTable
from repro.runtime.transport import (
    FaultyTransport,
    FrameTransport,
    RemoteServiceClient,
    RemoteServiceError,
    RemoteTransport,
    ServiceServer,
    TransportError,
    serve_tcp,
    serve_unix,
)

__all__ = [
    "WorkUnit",
    "ExecutionBackend",
    "SerialBackend",
    "MultiprocessBackend",
    "BatchedBackend",
    "BACKEND_PRESETS",
    "resolve_backend",
    "campaign_key",
    "sample_units",
    "run_campaign",
    "measure_plan_list",
    "Session",
    "session",
    "SCALE_PRESETS",
    "CampaignKey",
    "CampaignStore",
    "CostLogKey",
    "CostTableKey",
    "CostEngine",
    "ObjectiveCost",
    "CostRecord",
    "MetricSpec",
    "register_metric",
    "metric_spec",
    "available_metrics",
    "hardware_metric_names",
    "counter_metric_names",
    "model_metric_names",
    "Objective",
    "MetricObjective",
    "WeightedObjective",
    "CustomObjective",
    "resolve_objective",
    "MemoryStore",
    "DiskStore",
    "NullStore",
    "default_memory_store",
    "machine_config_hash",
    "resolve_store",
    "ShardedRecordStore",
    "ShardStats",
    "CampaignService",
    "CampaignJob",
    "JobTicket",
    "ServiceClient",
    "ServiceBackend",
    "ServiceStoreView",
    "ServiceStats",
    "ServiceHealth",
    "QuarantineEntry",
    "ServiceError",
    "serve",
    "ServiceServer",
    "serve_tcp",
    "serve_unix",
    "RemoteServiceClient",
    "RemoteServiceError",
    "RemoteTransport",
    "FrameTransport",
    "FaultyTransport",
    "TransportError",
    "FleetClient",
    "FleetView",
    "MembershipRegistry",
    "ring_weight",
    "ring_owner",
    "ring_assign",
    "FaultPlan",
    "FaultSpec",
    "FaultDecision",
    "FaultyBackend",
    "FaultyStore",
    "InjectedFault",
    "InjectedCrash",
    "has_counter_values",
    "TABLE_COLUMNS",
    "MeasurementTable",
]
