"""Persistent campaign stores.

Completed campaigns are durable artifacts: several figures analyse the same
underlying sample (Figures 5, 7, 8, 9 and 11 all share the large-size
campaign), and at paper scale a campaign is minutes-to-hours of simulation.
The store layer replaces the old process-local cache dict with a small
protocol:

* :class:`MemoryStore` — in-process dictionary (the old behaviour, now keyed
  correctly).
* :class:`DiskStore` — one JSON file per campaign under a directory, written
  atomically, so repeated figure runs and CI jobs skip re-measurement *across
  processes*.
* :class:`NullStore` — never stores anything (``use_cache=False``).

Keys are content-addressed: :func:`machine_config_hash` digests the *full*
:class:`~repro.machine.machine.MachineConfig` (cache geometry, instruction
weights, cycle model, element size — not just the config's name), which fixes
the historical collision where two machines sharing a name but differing in
geometry silently shared cached tables.

Per-plan costs live in an **append-log record store** keyed by
:class:`CostLogKey`: each entry maps a plan key to a multi-metric value
mapping (``{"cycles": ..., "instructions": ..., ...}``).  Appending a batch
of records is O(batch) regardless of how large the table already is — the
old format re-serialised the whole table on every measuring batch, which
made long campaigns quadratic in store writes.  Records for the same plan
merge metric-wise on read, so the set of known metrics per plan grows
monotonically.  :meth:`DiskStore.compact_cost_records` rewrites a log to one
merged line per plan; reading a compacted log is equivalent to reading the
original.  Old-format (pre-append-log) per-metric cost tables are migrated
transparently: their values appear in :meth:`get_cost_records` without any
re-measurement, and the single-table ``get_cost_table``/``put_cost_table``
methods remain as thin views over the log for older callers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping, Protocol, runtime_checkable

try:  # POSIX advisory locks; absent on platforms without fcntl (Windows)
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None  # type: ignore[assignment]

from repro.machine.machine import MachineConfig
from repro.runtime.table import MeasurementTable

__all__ = [
    "machine_config_hash",
    "CampaignKey",
    "CostTableKey",
    "CostLogKey",
    "CampaignStore",
    "MemoryStore",
    "DiskStore",
    "NullStore",
    "default_memory_store",
    "resolve_store",
]

#: Format version written into every whole-table DiskStore file.
DISK_FORMAT_VERSION = 1
#: Format version of the append-log cost record files.
LOG_FORMAT_VERSION = 2

#: Alias for the nested record mapping: plan key -> metric name -> value.
CostRecords = dict[str, dict[str, float]]


def machine_config_hash(config: MachineConfig) -> str:
    """Stable content hash of a full machine configuration.

    Every field of the configuration — nested cache geometries, instruction
    and cycle model weights, element size, simulator flags — contributes to
    the digest, so two configurations compare equal iff they would produce
    identical measurements.  The hash is stable across processes and Python
    versions (canonical JSON, no ``hash()`` involvement).
    """
    payload = dataclasses.asdict(config)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _token_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]


@dataclass(frozen=True)
class CampaignKey:
    """Content-addressed identity of one campaign.

    ``machine_hash`` is :func:`machine_config_hash` of the full configuration;
    the remaining fields are the sampler settings that determine which plans
    are drawn and which noise seeds they receive.  ``kind`` distinguishes RSU
    sample campaigns from other table-producing runs.
    """

    machine_hash: str
    n: int
    count: int
    seed: int
    max_leaf: int
    max_children: int | None
    kind: str = "rsu"

    def as_dict(self) -> dict:
        """Plain dictionary view (written into DiskStore files)."""
        return dataclasses.asdict(self)

    def token(self) -> str:
        """Compact filesystem-safe identifier for this key."""
        return f"{self.kind}-n{self.n}-c{self.count}-{_token_digest(self.as_dict())}"


@dataclass(frozen=True)
class CostTableKey:
    """Content-addressed identity of one *single-metric* cost table.

    This is the pre-append-log format's key: one table per
    ``(machine, metric, seed)``.  It survives for two reasons — the legacy
    ``get_cost_table``/``put_cost_table`` API projects one metric out of the
    record log through it, and :class:`DiskStore` migrates old files written
    under these keys into :meth:`~DiskStore.get_cost_records` results.
    """

    machine_hash: str
    metric: str = "cycles"
    seed: int = 0

    def as_dict(self) -> dict:
        """Plain dictionary view (written into DiskStore files)."""
        return dataclasses.asdict(self)

    def token(self) -> str:
        """Compact filesystem-safe identifier for this key."""
        return f"costs-{self.metric}-{_token_digest(self.as_dict())}"

    def log_key(self) -> "CostLogKey":
        """The record-log key this table's values fold into."""
        return CostLogKey(machine_hash=self.machine_hash, seed=self.seed)


@dataclass(frozen=True)
class CostLogKey:
    """Content-addressed identity of one multi-metric cost record log.

    One log holds *every* metric measured for a machine configuration under
    one noise-derivation seed; metrics are fields of the stored records, not
    part of the key, so adding a metric to a campaign later extends the same
    log instead of forking a new table.
    """

    machine_hash: str
    seed: int = 0

    def as_dict(self) -> dict:
        """Plain dictionary view (written into log headers)."""
        return dataclasses.asdict(self)

    def token(self) -> str:
        """Compact filesystem-safe identifier for this key."""
        return f"costlog-{_token_digest(self.as_dict())}"


def _merge_records(into: CostRecords, new: Mapping[str, Mapping[str, float]]) -> None:
    for plan_key, values in new.items():
        record = into.setdefault(str(plan_key), {})
        for metric, value in values.items():
            record[str(metric)] = float(value)


@runtime_checkable
class CampaignStore(Protocol):
    """Where completed campaign tables and per-plan cost records live."""

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        """The stored table for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        """Store ``table`` under ``key`` (overwriting any previous entry)."""
        ...

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        """Every stored cost record for ``key``, merged per plan.

        Returns a fresh mutable mapping (empty on a miss); old-format
        single-metric tables for the same machine and seed are folded in
        transparently.
        """
        ...

    def append_cost_records(self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]) -> None:
        """Durably append a batch of records to ``key``'s log.

        The call returns only after the records are persisted; appending is
        O(batch), independent of the log's existing size.
        """
        ...

    def compact_cost_records(self, key: CostLogKey) -> None:
        """Rewrite ``key``'s log into one merged record per plan."""
        ...

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        """Legacy view: one metric's plan-key -> value mapping, or ``None``."""
        ...

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        """Legacy write: append ``costs`` as single-metric records."""
        ...

    def clear(self) -> None:
        """Drop every stored table."""
        ...


class _CostTableCompat:
    """The legacy single-metric API, expressed over the record log."""

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        records = self.get_cost_records(key.log_key())  # type: ignore[attr-defined]
        table = {
            plan_key: values[key.metric]
            for plan_key, values in records.items()
            if key.metric in values
        }
        return table or None

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        self.append_cost_records(  # type: ignore[attr-defined]
            key.log_key(), {plan_key: {key.metric: value} for plan_key, value in costs.items()}
        )


class MemoryStore(_CostTableCompat):
    """In-process store: plain dictionaries keyed by the content keys."""

    def __init__(self) -> None:
        self._tables: dict[CampaignKey, MeasurementTable] = {}
        self._cost_records: dict[CostLogKey, CostRecords] = {}

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return self._tables.get(key)

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        self._tables[key] = table

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        stored = self._cost_records.get(key, {})
        return {plan_key: dict(values) for plan_key, values in stored.items()}

    def append_cost_records(self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]) -> None:
        _merge_records(self._cost_records.setdefault(key, {}), records)

    def compact_cost_records(self, key: CostLogKey) -> None:
        return None  # records are already merged per plan

    def clear(self) -> None:
        self._tables.clear()
        self._cost_records.clear()

    def __len__(self) -> int:
        return len(self._tables) + len(self._cost_records)

    def __repr__(self) -> str:
        return (
            f"MemoryStore({len(self._tables)} tables, "
            f"{len(self._cost_records)} cost logs)"
        )


class NullStore:
    """A store that never hits and never retains (``use_cache=False``)."""

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return None

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        return None

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        return {}

    def append_cost_records(self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]) -> None:
        return None

    def compact_cost_records(self, key: CostLogKey) -> None:
        return None

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        return None

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        return None

    def clear(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullStore()"


class DiskStore(_CostTableCompat):
    """One JSON file per campaign under ``path``; durable across processes.

    Campaign tables are written atomically (temp file + ``os.replace``) so a
    crashed or concurrent writer can never leave a half-written table behind.
    Cost records use the append-log format instead: one ``.jsonl`` file per
    :class:`CostLogKey` whose lines are independently parseable records, so a
    measuring batch pays one O(batch) append (plus an fsync) rather than a
    whole-table rewrite, and a crash mid-append loses at most the trailing
    partial line — which the reader detects and skips.  Writers (appends and
    compactions) of one log serialise on an advisory ``flock`` held via a
    sidecar ``.lock`` file, so two processes sharing a store directory can
    never interleave a shard's log or lose appends to a concurrent
    compaction; readers stay lock-free.  There is deliberately no in-memory
    memoisation of record *values*: every read re-reads the file, which is
    what makes a second process's cache hit equivalent to a same-process
    one.

    ``auto_compact`` (off by default) bounds reopen cost for long-lived
    campaigns: after each append, when a log holds more than ``auto_compact``
    times as many record lines as distinct plans (duplicate lines accumulate
    when later batches extend earlier plans' metrics), the log is compacted
    to one merged line per plan.  The trigger state is tracked per process
    (seeded by one read of the existing log on the first append) and
    compaction is read-equivalent, so concurrent writers at worst compact a
    little early or late — never incorrectly.
    """

    def __init__(
        self,
        path: "str | os.PathLike[str]",
        auto_compact: float | None = None,
    ):
        if auto_compact is not None and auto_compact < 1.0:
            raise ValueError(
                f"auto_compact must be at least 1 (a line-to-plan ratio), "
                f"got {auto_compact}"
            )
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.auto_compact = auto_compact
        #: Per-log trigger state: (record line count, distinct plan keys).
        self._log_state: dict[CostLogKey, tuple[int, set[str]]] = {}

    def _file_for(self, key: CampaignKey) -> Path:
        return self.path / f"{key.token()}.json"

    def _log_for(self, key: CostLogKey) -> Path:
        return self.path / f"{key.token()}.jsonl"

    def log_path(self, key: CostLogKey) -> Path:
        """The on-disk append-log file of ``key`` (created on first append).

        Public so fault injectors and crash-tolerance tests can reach the
        raw log (torn tails, partial lines) without depending on the file
        naming scheme.
        """
        return self._log_for(key)

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        file = self._file_for(key)
        try:
            with open(file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != DISK_FORMAT_VERSION:
                return None  # written by an incompatible version; treat as a miss
            return MeasurementTable.from_dict(payload["table"])
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A concurrent clear(), a truncated write that never reached
            # os.replace, or a corrupt/foreign file: all are misses — the
            # campaign is simply re-measured and re-stored.
            return None

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        payload = {
            "version": DISK_FORMAT_VERSION,
            "key": key.as_dict(),
            "table": table.as_dict(),
        }
        self._write_atomic(self._file_for(key), payload)

    # -- cost record log ---------------------------------------------------------

    @contextmanager
    def _log_write_lock(self, key: CostLogKey) -> Iterator[None]:
        """Advisory exclusive lock serialising writers of one record log.

        The lock lives on a *sidecar* ``.lock`` file rather than the log
        itself: compaction replaces the log's inode (``os.replace``), and a
        writer blocked on the old inode's lock would otherwise wake up and
        append to an orphaned file.  The sidecar is never replaced, so every
        process (and every thread — each acquisition opens its own
        descriptor, and ``flock`` serialises distinct open descriptions)
        agrees on one lock per shard.  Readers never take it: the append-log
        format already tolerates concurrent appends mid-read.
        """
        lock_file = self.path / f"{key.token()}.lock"
        fd = os.open(lock_file, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def get_cost_records(self, key: CostLogKey) -> CostRecords:
        records: CostRecords = {}
        self._migrate_legacy_tables(key, records)
        self._merge_log_entries(records, self._log_for(key))
        return records

    def _merge_log_entries(self, records: CostRecords, file: Path) -> None:
        for entry in self._read_log(file):
            plan_key = entry.get("p")
            values = entry.get("v")
            if isinstance(plan_key, str) and isinstance(values, dict):
                try:
                    _merge_records(records, {plan_key: values})
                except (TypeError, ValueError):
                    continue  # a foreign or corrupt record: skip, don't crash

    def append_cost_records(self, key: CostLogKey, records: Mapping[str, Mapping[str, float]]) -> None:
        if not records:
            return
        if self.auto_compact is not None and key not in self._log_state:
            # Seed the trigger counters from the log as it exists before this
            # process's first append (one read; O(batch) updates afterwards).
            seeded = 0
            plans: set[str] = set()
            for entry in self._read_log(self._log_for(key)):
                plan = entry.get("p")
                if isinstance(plan, str):
                    seeded += 1
                    plans.add(plan)
            self._log_state[key] = (seeded, plans)
        lines = []
        for plan_key, values in records.items():
            payload = {
                "p": str(plan_key),
                "v": {str(m): float(v) for m, v in values.items()},
            }
            lines.append(json.dumps(payload))
        # The whole batch goes out as ONE os.write on an O_APPEND descriptor
        # under the shard's advisory writer lock: two processes sharing a
        # store directory are serialised whole-batch (the O_APPEND write
        # additionally guarantees that even a foreign unlocked writer cannot
        # interleave mid-line), so simultaneous batches land whole, in some
        # order.
        data = ("\n".join(lines) + "\n").encode("utf-8")
        with self._log_write_lock(key):
            fd = os.open(self._log_for(key), os.O_RDWR | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                size = os.fstat(fd).st_size
                if size == 0:
                    header = json.dumps(
                        {"version": LOG_FORMAT_VERSION, "key": key.as_dict()}
                    )
                    data = (header + "\n").encode("utf-8") + data
                else:
                    # A crash can leave a partial trailing line; never glue new
                    # records onto it — terminate it so the reader skips exactly
                    # the partial line and nothing after it.
                    os.lseek(fd, -1, os.SEEK_END)
                    if os.read(fd, 1) != b"\n":
                        data = b"\n" + data
                os.write(fd, data)
                os.fsync(fd)
            finally:
                os.close(fd)
        if self.auto_compact is not None:
            self._maybe_auto_compact(key, records)

    def _maybe_auto_compact(self, key: CostLogKey, appended: Mapping[str, Mapping[str, float]]) -> None:
        lines, plans = self._log_state[key]
        lines += len(appended)
        plans.update(appended)
        self._log_state[key] = (lines, plans)
        if lines > self.auto_compact * max(len(plans), 1):
            # compact_cost_records refreshes the trigger state from the full
            # merged log, which also folds in any concurrent writer's plans.
            self.compact_cost_records(key)

    def compact_cost_records(self, key: CostLogKey) -> None:
        """Atomically rewrite the log as one merged record line per plan.

        Compaction folds migrated old-format tables into the log and then
        *retires* those legacy files, so after a compaction the log alone
        carries every known value and reads stop paying the migration scan.
        Reading a compacted log yields exactly what reading the original
        would.  The shard's writer lock is held across the read-merge-replace
        cycle, so a concurrent appender can never land records between the
        read and the replace (which would silently drop them).
        """
        with self._log_write_lock(key):
            records: CostRecords = {}
            legacy_files = self._migrate_legacy_tables(key, records)
            self._merge_log_entries(records, self._log_for(key))
            if not records:
                return
            file = self._log_for(key)
            lines = [json.dumps({"version": LOG_FORMAT_VERSION, "key": key.as_dict()})]
            for plan_key in sorted(records):
                lines.append(json.dumps({"p": plan_key, "v": records[plan_key]}))
            fd, tmp_name = tempfile.mkstemp(prefix=f".{file.stem}.", suffix=".tmp", dir=self.path)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write("\n".join(lines) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp_name, file)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        for legacy in legacy_files:
            # The compacted log now carries these values durably.
            try:
                legacy.unlink()
            except OSError:
                pass
        if key in self._log_state:
            # The log now holds exactly one line per plan.
            self._log_state[key] = (len(records), set(records))

    def _read_log(self, file: Path) -> Iterator[dict]:
        """Parse a record log, tolerating truncated or corrupt lines.

        Every line is an independent record, so a malformed line — the
        partial tail a crash between ``write`` and ``fsync`` leaves behind,
        or a line damaged by a foreign writer — is *skipped*, not fatal:
        records appended after a crash (the appender terminates any partial
        tail first) remain reachable.  Only an incompatible version header
        aborts the whole log.
        """
        try:
            with open(file, "r", encoding="utf-8") as handle:
                raw_lines = handle.read().split("\n")
        except OSError:
            return
        for raw in raw_lines:
            if not raw.strip():
                continue
            try:
                entry = json.loads(raw)
            except json.JSONDecodeError:
                continue  # partial or damaged line: lose it, keep the rest
            if not isinstance(entry, dict):
                continue
            if "version" in entry:
                if entry.get("version") != LOG_FORMAT_VERSION:
                    return  # incompatible log: ignore its records entirely
                continue
            yield entry

    def _migrate_legacy_tables(self, key: CostLogKey, records: CostRecords) -> list[Path]:
        """Fold pre-append-log single-metric cost tables into ``records``.

        Old-format files are ``costs-<metric>-<digest>.json`` with the full
        :class:`CostTableKey` embedded; every one matching this log's machine
        hash and seed contributes its metric.  Log entries are merged *after*
        migration, so anything re-recorded in the log wins.  Returns the
        legacy files that contributed (compaction retires them).
        """
        folded: list[Path] = []
        for file in self.path.glob("costs-*.json"):
            try:
                with open(file, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                if payload.get("version") != DISK_FORMAT_VERSION:
                    continue
                table_key = payload.get("key", {})
                if (
                    table_key.get("machine_hash") != key.machine_hash
                    or int(table_key.get("seed", 0)) != key.seed
                ):
                    continue
                metric = str(table_key.get("metric", "cycles"))
                _merge_records(
                    records,
                    {str(p): {metric: float(v)} for p, v in payload["costs"].items()},
                )
                folded.append(file)
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue  # unreadable legacy file: a migration miss, not a crash
        return folded

    def _write_atomic(self, file: Path, payload: dict) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{file.stem}.", suffix=".tmp", dir=self.path
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, file)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        self._log_state.clear()
        patterns = ("*.json", "*.jsonl", "*.lock")
        for file in [f for pattern in patterns for f in self.path.glob(pattern)]:
            try:
                file.unlink()
            except OSError:
                pass

    def entries(self) -> Iterator[Path]:
        """Paths of every stored campaign file (for inspection and tests)."""
        return iter(sorted(self.path.glob("*.json")))

    def cost_logs(self) -> Iterator[Path]:
        """Paths of every cost record log (for inspection and tests)."""
        return iter(sorted(self.path.glob("*.jsonl")))

    def __repr__(self) -> str:
        return f"DiskStore({str(self.path)!r})"


#: The process-wide default store, shared by every session and legacy
#: campaign that asks for ``"memory"``.  Sharing preserves the old behaviour
#: where several suites reused each other's completed campaigns in-process.
_DEFAULT_MEMORY_STORE = MemoryStore()


def default_memory_store() -> MemoryStore:
    """The shared in-process store used by ``store="memory"``."""
    return _DEFAULT_MEMORY_STORE


def resolve_store(spec: "str | os.PathLike[str] | CampaignStore | None") -> CampaignStore:
    """Normalise a store spec into a :class:`CampaignStore`.

    ``"memory"`` is the shared in-process store, ``"none"``/``None`` disables
    caching, and a path (any :class:`os.PathLike`, or a string containing a
    path separator such as ``"./campaigns"``) becomes a :class:`DiskStore`
    rooted at that directory.  A bare string that is neither a known store
    name nor path-like raises — so a typo of ``"memory"`` cannot silently
    switch caching semantics.  Store instances pass through unchanged.
    """
    if spec is None:
        return NullStore()
    if isinstance(spec, str):
        if spec == "memory":
            return default_memory_store()
        if spec == "none":
            return NullStore()
        if os.sep in spec or (os.altsep is not None and os.altsep in spec):
            return DiskStore(spec)
        raise ValueError(
            f"unknown store {spec!r}; use 'memory', 'none', a directory path "
            f"like {'./' + spec!r}, or a CampaignStore instance"
        )
    if isinstance(spec, os.PathLike):
        return DiskStore(spec)
    if isinstance(spec, CampaignStore):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a campaign store")
