"""Persistent campaign stores.

Completed campaigns are durable artifacts: several figures analyse the same
underlying sample (Figures 5, 7, 8, 9 and 11 all share the large-size
campaign), and at paper scale a campaign is minutes-to-hours of simulation.
The store layer replaces the old process-local cache dict with a small
protocol:

* :class:`MemoryStore` — in-process dictionary (the old behaviour, now keyed
  correctly).
* :class:`DiskStore` — one JSON file per campaign under a directory, written
  atomically, so repeated figure runs and CI jobs skip re-measurement *across
  processes*.
* :class:`NullStore` — never stores anything (``use_cache=False``).

Keys are content-addressed: :func:`machine_config_hash` digests the *full*
:class:`~repro.machine.machine.MachineConfig` (cache geometry, instruction
weights, cycle model, element size — not just the config's name), which fixes
the historical collision where two machines sharing a name but differing in
geometry silently shared cached tables.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Protocol, runtime_checkable

from repro.machine.machine import MachineConfig
from repro.runtime.table import MeasurementTable

__all__ = [
    "machine_config_hash",
    "CampaignKey",
    "CostTableKey",
    "CampaignStore",
    "MemoryStore",
    "DiskStore",
    "NullStore",
    "default_memory_store",
    "resolve_store",
]

#: Format version written into every DiskStore file; bump on layout changes.
DISK_FORMAT_VERSION = 1


def machine_config_hash(config: MachineConfig) -> str:
    """Stable content hash of a full machine configuration.

    Every field of the configuration — nested cache geometries, instruction
    and cycle model weights, element size, simulator flags — contributes to
    the digest, so two configurations compare equal iff they would produce
    identical measurements.  The hash is stable across processes and Python
    versions (canonical JSON, no ``hash()`` involvement).
    """
    payload = dataclasses.asdict(config)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CampaignKey:
    """Content-addressed identity of one campaign.

    ``machine_hash`` is :func:`machine_config_hash` of the full configuration;
    the remaining fields are the sampler settings that determine which plans
    are drawn and which noise seeds they receive.  ``kind`` distinguishes RSU
    sample campaigns from other table-producing runs.
    """

    machine_hash: str
    n: int
    count: int
    seed: int
    max_leaf: int
    max_children: int | None
    kind: str = "rsu"

    def as_dict(self) -> dict:
        """Plain dictionary view (written into DiskStore files)."""
        return dataclasses.asdict(self)

    def token(self) -> str:
        """Compact filesystem-safe identifier for this key."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]
        return f"{self.kind}-n{self.n}-c{self.count}-{digest}"


@dataclass(frozen=True)
class CostTableKey:
    """Content-addressed identity of one per-plan cost table.

    ``machine_hash`` is :func:`machine_config_hash` of the full machine
    configuration (which includes the cycle model and its noise level);
    ``metric`` names the cost quantity (``"cycles"``), and ``seed`` is the
    cost engine's noise-derivation seed, so two engines share cached costs
    iff they would have produced identical values.  The table itself maps
    :func:`repro.wht.encoding.plan_key` strings to floats.
    """

    machine_hash: str
    metric: str = "cycles"
    seed: int = 0

    def as_dict(self) -> dict:
        """Plain dictionary view (written into DiskStore files)."""
        return dataclasses.asdict(self)

    def token(self) -> str:
        """Compact filesystem-safe identifier for this key."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:20]
        return f"costs-{self.metric}-{digest}"


@runtime_checkable
class CampaignStore(Protocol):
    """Where completed campaign tables and per-plan cost tables live."""

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        """The stored table for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        """Store ``table`` under ``key`` (overwriting any previous entry)."""
        ...

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        """The stored plan-key → cost mapping for ``key``, or ``None``."""
        ...

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        """Store ``costs`` under ``key`` (overwriting any previous entry)."""
        ...

    def clear(self) -> None:
        """Drop every stored table."""
        ...


class MemoryStore:
    """In-process store: plain dictionaries keyed by the content keys."""

    def __init__(self) -> None:
        self._tables: dict[CampaignKey, MeasurementTable] = {}
        self._cost_tables: dict[CostTableKey, dict[str, float]] = {}

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return self._tables.get(key)

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        self._tables[key] = table

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        costs = self._cost_tables.get(key)
        return dict(costs) if costs is not None else None

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        self._cost_tables[key] = dict(costs)

    def clear(self) -> None:
        self._tables.clear()
        self._cost_tables.clear()

    def __len__(self) -> int:
        return len(self._tables) + len(self._cost_tables)

    def __repr__(self) -> str:
        return (
            f"MemoryStore({len(self._tables)} tables, "
            f"{len(self._cost_tables)} cost tables)"
        )


class NullStore:
    """A store that never hits and never retains (``use_cache=False``)."""

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        return None

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        return None

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        return None

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        return None

    def clear(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NullStore()"


class DiskStore:
    """One JSON file per campaign under ``path``; durable across processes.

    Files are written atomically (temp file + ``os.replace``) so a crashed or
    concurrent writer can never leave a half-written table behind; readers
    either see the old file, the new file, or no file.  There is deliberately
    no in-memory memoisation: every ``get`` re-reads the file, which is what
    makes a second process's cache hit equivalent to a same-process one.
    """

    def __init__(self, path: "str | os.PathLike[str]"):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _file_for(self, key: CampaignKey) -> Path:
        return self.path / f"{key.token()}.json"

    def get(self, key: CampaignKey) -> MeasurementTable | None:
        file = self._file_for(key)
        try:
            with open(file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != DISK_FORMAT_VERSION:
                return None  # written by an incompatible version; treat as a miss
            return MeasurementTable.from_dict(payload["table"])
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A concurrent clear(), a truncated write that never reached
            # os.replace, or a corrupt/foreign file: all are misses — the
            # campaign is simply re-measured and re-stored.
            return None

    def put(self, key: CampaignKey, table: MeasurementTable) -> None:
        payload = {
            "version": DISK_FORMAT_VERSION,
            "key": key.as_dict(),
            "table": table.as_dict(),
        }
        self._write_atomic(self._file_for(key), payload)

    def get_cost_table(self, key: CostTableKey) -> dict[str, float] | None:
        file = self.path / f"{key.token()}.json"
        try:
            with open(file, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != DISK_FORMAT_VERSION:
                return None
            return {str(k): float(v) for k, v in payload["costs"].items()}
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            # Same policy as campaign tables: anything unreadable is a miss.
            return None

    def put_cost_table(self, key: CostTableKey, costs: dict[str, float]) -> None:
        payload = {
            "version": DISK_FORMAT_VERSION,
            "key": key.as_dict(),
            "costs": {str(k): float(v) for k, v in costs.items()},
        }
        self._write_atomic(self.path / f"{key.token()}.json", payload)

    def _write_atomic(self, file: Path, payload: dict) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{file.stem}.", suffix=".tmp", dir=self.path
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, file)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> None:
        for file in self.path.glob("*.json"):
            try:
                file.unlink()
            except OSError:
                pass

    def entries(self) -> Iterator[Path]:
        """Paths of every stored campaign file (for inspection and tests)."""
        return iter(sorted(self.path.glob("*.json")))

    def __repr__(self) -> str:
        return f"DiskStore({str(self.path)!r})"


#: The process-wide default store, shared by every session and legacy
#: campaign that asks for ``"memory"``.  Sharing preserves the old behaviour
#: where several suites reused each other's completed campaigns in-process.
_DEFAULT_MEMORY_STORE = MemoryStore()


def default_memory_store() -> MemoryStore:
    """The shared in-process store used by ``store="memory"``."""
    return _DEFAULT_MEMORY_STORE


def resolve_store(spec: "str | os.PathLike[str] | CampaignStore | None") -> CampaignStore:
    """Normalise a store spec into a :class:`CampaignStore`.

    ``"memory"`` is the shared in-process store, ``"none"``/``None`` disables
    caching, and a path (any :class:`os.PathLike`, or a string containing a
    path separator such as ``"./campaigns"``) becomes a :class:`DiskStore`
    rooted at that directory.  A bare string that is neither a known store
    name nor path-like raises — so a typo of ``"memory"`` cannot silently
    switch caching semantics.  Store instances pass through unchanged.
    """
    if spec is None:
        return NullStore()
    if isinstance(spec, str):
        if spec == "memory":
            return default_memory_store()
        if spec == "none":
            return NullStore()
        if os.sep in spec or (os.altsep is not None and os.altsep in spec):
            return DiskStore(spec)
        raise ValueError(
            f"unknown store {spec!r}; use 'memory', 'none', a directory path "
            f"like {'./' + spec!r}, or a CampaignStore instance"
        )
    if isinstance(spec, os.PathLike):
        return DiskStore(spec)
    if isinstance(spec, CampaignStore):
        return spec
    raise TypeError(f"cannot interpret {spec!r} as a campaign store")
