"""The batched, metric-first plan-evaluation engine for search costs.

The paper's search economics are "spend expensive work only where it pays":
analytic models prune the space and only the survivors are measured.  This
module applies the same economics to the *measurement* side of a search, and
— since the paper's whole point is that different cost functions rank plans
differently — does it per **metric**:

* candidates are evaluated in **batches** — a search round hands the whole
  candidate list to :meth:`CostEngine.records`, which deduplicates by
  :func:`repro.wht.encoding.plan_key` and routes the remaining work through a
  pluggable :class:`~repro.runtime.backends.ExecutionBackend` (serial or
  multiprocess fan-out);
* one simulated execution populates **every hardware counter metric at
  once** (``cycles``, ``instructions``, ``l1_misses``, ``l2_misses``,
  ``l1_accesses`` all come from the same
  :class:`~repro.machine.measurement.Measurement`), so requesting a subset
  of already-measured metrics — or a new counter metric on a measured plan —
  re-measures nothing;
* analytic **model metrics** (``model_instructions``, ``model_l1_misses``,
  ``model_combined``) are computed from the plan structure with the
  vectorised batch models and never touch the machine, so adding a model
  metric to an existing campaign performs zero hardware measurements;
* every record lands in a **persistent append-log record store** in the
  session's :class:`~repro.runtime.store.CampaignStore`, keyed by
  ``(machine content hash, seed)`` — re-running a figure or resuming a
  search in a later process skips every already-measured candidate, and
  appends stay O(batch) no matter how large the table has grown;
* the noise draw of each measurement is seeded per plan
  (``derive_seed(seed, "plan-cost", plan_key)``), so the cost of a plan is
  one well-defined record independent of evaluation order, batch shape or
  backend — which is what makes serial, multiprocess and cached evaluation
  bit-identical.  (On a noise-free machine the engine matches the plain
  :class:`~repro.search.costs.MeasuredCyclesCost` exactly as well.)

Search strategies consume the engine through an
:class:`~repro.runtime.objectives.Objective`: the engine itself is a drop-in
cost function for its default objective (callable on a single plan, ``batch``
for the strategies' batched protocol), and :meth:`CostEngine.cost` binds any
other objective — a different metric, the paper's ``alpha*I + beta*M``
composite, or a custom reducer — to the same shared record cache.  The
``evaluations`` / ``measured`` counter pair distinguishes cache hits from
real simulation work for honest pruning reports.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.machine import PreparedPlanCache, SimulatedMachine
from repro.runtime.backends import BatchedBackend, ExecutionBackend, WorkUnit
from repro.runtime.metrics import (
    COUNTER_CHANNEL,
    MODEL_CHANNEL,
    WALL_CHANNEL,
    CostRecord,
    counter_values,
    metric_spec,
    nondeterministic_metric_names,
)
from repro.runtime.objectives import Objective, resolve_objective
from repro.runtime.store import CampaignStore, CostLogKey, NullStore, machine_config_hash
from repro.util.rng import derive_seed
from repro.wht.encoding import MAX_ENCODABLE_EXPONENT, EncodedPlans, encode_plans, plan_key
from repro.wht.plan import Plan

__all__ = ["CostEngine", "ObjectiveCost"]


class ObjectiveCost:
    """One objective bound to a cost engine: a drop-in search cost function.

    Callable on a single plan, exposes ``batch`` for the strategies' batched
    evaluation protocol, and proxies the engine's ``evaluations``/``measured``
    counters so pruning reports stay honest.  All objective costs bound to
    the same engine share its per-plan record cache — evaluating a second
    objective over already-measured metrics costs nothing.
    """

    def __init__(self, engine: "CostEngine", objective: Objective):
        self.engine = engine
        self.objective = objective

    def batch(self, plans: Sequence[Plan]) -> list[float]:
        """Objective values of ``plans`` in order."""
        records = self.engine.records(plans, self.objective.metrics)
        value = self.objective.value
        return [value(record.values) for record in records]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    @property
    def evaluations(self) -> int:
        """Plan-cost requests served by the underlying engine."""
        return self.engine.evaluations

    @property
    def measured(self) -> int:
        """Plans actually measured by the underlying engine."""
        return self.engine.measured

    def __repr__(self) -> str:
        return f"ObjectiveCost({self.objective.describe()!r}, engine={self.engine!r})"


class CostEngine:
    """Batched, cached multi-metric evaluation of candidate plans.

    Parameters
    ----------
    machine:
        The simulated machine to measure on.  Unless it already has one, a
        :class:`~repro.machine.machine.PreparedPlanCache` is attached so
        repeated preparations within the engine's lifetime are also reused.
    objective:
        The engine's default objective — what ``engine(plan)`` and
        ``engine.batch(plans)`` evaluate.  A metric name string, an
        :class:`~repro.runtime.objectives.Objective`, or a
        :class:`~repro.models.combined.CombinedModel` (default:
        ``"cycles"``, the WHT package's classic search cost).
    backend:
        How candidate batches execute (default:
        :class:`~repro.runtime.backends.BatchedBackend`, which fuses every
        batch's distinct plans into one cross-plan prepared workload).
    store:
        Where the per-plan record log persists (default:
        :class:`~repro.runtime.store.NullStore`, i.e. in-memory for the
        engine's lifetime only).  With a
        :class:`~repro.runtime.store.DiskStore` the cache survives across
        processes.
    seed:
        Seed of the per-plan noise derivation.  Engines sharing (machine
        configuration, seed) share cached records — across *all* metrics
        and objectives.
    """

    def __init__(
        self,
        machine: SimulatedMachine,
        *,
        objective: "str | Objective" = "cycles",
        backend: ExecutionBackend | None = None,
        store: CampaignStore | None = None,
        seed: int = 0,
        prepared_cache_size: int = 256,
    ):
        self.machine = machine
        if machine.prepared_cache is None and prepared_cache_size > 0:
            machine.prepared_cache = PreparedPlanCache(prepared_cache_size)
        self.objective = resolve_objective(objective)
        self.backend = backend if backend is not None else BatchedBackend()
        self.store = store if store is not None else NullStore()
        self.seed = int(seed)
        self.key = CostLogKey(
            machine_hash=machine_config_hash(machine.config), seed=self.seed
        )
        #: Per-plan record cache: plan key -> metric name -> value.  Seeded
        #: from the store's record log (including transparently migrated
        #: old-format single-metric tables).  Non-deterministic metrics
        #: (wall time) are scrubbed on load — a timing recorded by another
        #: host or session must never be served as this engine's cache hit.
        self._records: dict[str, dict[str, float]] = self.store.get_cost_records(self.key)
        volatile = nondeterministic_metric_names()
        if volatile:
            for record in self._records.values():
                for name in volatile:
                    record.pop(name, None)
        self._scorers: dict[str, object] = {}
        #: Plan-cost requests served (cache hits included).
        self.evaluations = 0
        #: Plans actually executed or simulated (hardware cache misses).
        self.measured = 0

    # -- objective binding -------------------------------------------------------

    def cost(self, objective: "str | Objective") -> ObjectiveCost:
        """Bind ``objective`` to this engine as a drop-in cost function.

        Every bound cost shares the engine's record cache, store and
        counters, so switching objectives mid-campaign re-measures nothing
        that is already known.
        """
        return ObjectiveCost(self, resolve_objective(objective))

    # -- evaluation --------------------------------------------------------------

    def _noise_seed(self, key: str) -> int:
        return derive_seed(self.seed, "plan-cost", key)

    def records(
        self, plans: Sequence[Plan], metrics: Sequence[str] | None = None
    ) -> list[CostRecord]:
        """Cost records of ``plans`` in order, restricted to ``metrics``.

        ``metrics`` defaults to the engine's objective's metrics.  Per
        metric, only the work that is actually missing happens: hardware
        counter metrics trigger one measurement per distinct unmeasured plan
        (populating *all* counter metrics of that plan at once), wall-time
        metrics execute the plan, and model metrics are computed with the
        vectorised batch models without touching the machine.  Everything
        newly acquired is appended to the store's record log before the call
        returns — the durability contract: no returned value can be lost.
        """
        names = tuple(metrics) if metrics is not None else self.objective.metrics
        specs = [metric_spec(name) for name in names]
        keys = [plan_key(plan) for plan in plans]
        self.evaluations += len(keys)

        need_counters: dict[str, Plan] = {}
        need_wall: dict[tuple[str, str], tuple[Plan, object]] = {}
        need_model: dict[str, dict[str, Plan]] = {}
        for key, plan in zip(keys, plans):
            record = self._records.get(key)
            for spec in specs:
                if record is not None and spec.name in record:
                    continue
                if spec.channel == COUNTER_CHANNEL:
                    need_counters.setdefault(key, plan)
                elif spec.channel == WALL_CHANNEL:
                    need_wall.setdefault((key, spec.name), (plan, spec))
                elif spec.channel == MODEL_CHANNEL:
                    need_model.setdefault(spec.name, {}).setdefault(key, plan)

        pending: dict[str, dict[str, float]] = {}

        def stage(key: str, values: dict[str, float], persist: bool = True) -> None:
            self._records.setdefault(key, {}).update(values)
            if persist:
                pending.setdefault(key, {}).update(values)

        if need_counters:
            units = [
                WorkUnit(plan=plan, noise_seed=self._noise_seed(key))
                for key, plan in need_counters.items()
            ]
            measurements = self.backend.measure_units(self.machine, units)
            self.measured += len(units)
            for key, measurement in zip(need_counters, measurements):
                stage(key, counter_values(measurement))
        for (key, _name), (plan, spec) in need_wall.items():
            self.measured += 1
            # Non-deterministic acquisitions are memoised for this engine's
            # lifetime but never persisted: wall time measured here is
            # meaningless on the host that reads the store next.
            stage(
                key,
                {spec.name: float(spec.measure(self.machine, plan))},
                persist=spec.deterministic,
            )
        if need_model:
            # One shared encoding feeds every model metric of the batch
            # (a composite objective asks for two or three at once); each
            # metric stages only the plans that were missing *it*.
            union: dict[str, Plan] = {}
            for missing in need_model.values():
                union.update(missing)
            shared: EncodedPlans | None = None
            if len(need_model) > 1:
                union_plans = list(union.values())
                if all(plan.n <= MAX_ENCODABLE_EXPONENT for plan in union_plans):
                    shared = encode_plans(union_plans)
            if shared is not None:
                index_of = {key: index for index, key in enumerate(union)}
                for name, missing in need_model.items():
                    values = self._scorer(name)(shared)
                    for key in missing:
                        stage(key, {name: float(values[index_of[key]])})
            else:
                for name, missing in need_model.items():
                    values = self._scorer(name)(list(missing.values()))
                    for key, value in zip(missing, values):
                        stage(key, {name: float(value)})

        if pending:
            self.store.append_cost_records(self.key, pending)
        return [
            CostRecord(
                plan_key=key,
                values={name: self._records[key][name] for name in names},
            )
            for key in keys
        ]

    def _scorer(self, metric: str):
        scorer = self._scorers.get(metric)
        if scorer is None:
            scorer = metric_spec(metric).scorer_factory(self.machine.config)
            self._scorers[metric] = scorer
        return scorer

    def batch(self, plans: Sequence[Plan]) -> list[float]:
        """Default-objective costs of ``plans`` in order.

        Duplicates within the batch and metrics already in the record cache
        are served without touching the machine; the remaining distinct
        plans go through the execution backend as one unit list and their
        records are appended to the store before returning.
        """
        records = self.records(plans)
        value = self.objective.value
        return [value(record.values) for record in records]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    # -- persistence -------------------------------------------------------------

    def flush(self) -> None:
        """Compat no-op: records are appended durably as they are acquired.

        The append-log store made the old merge-read/rewrite cycle obsolete —
        every record ever returned is already persisted by the time the
        returning call completes.  The method survives so callers written
        against the whole-table engine keep working.
        """
        return None

    def compact(self) -> None:
        """Compact the store's record log for this engine's key."""
        self.store.compact_cost_records(self.key)

    # -- introspection -----------------------------------------------------------

    @property
    def cached_costs(self) -> int:
        """Number of plans with at least one cached metric value."""
        return len(self._records)

    def known_metrics(self, plan: Plan) -> tuple[str, ...]:
        """The metrics already cached for ``plan`` (empty if unknown)."""
        return tuple(self._records.get(plan_key(plan), ()))

    def __repr__(self) -> str:
        return (
            f"CostEngine(machine={self.machine.config.name!r}, "
            f"objective={self.objective.describe()!r}, "
            f"backend={getattr(self.backend, 'name', type(self.backend).__name__)}, "
            f"store={self.store!r}, seed={self.seed}, "
            f"{self.cached_costs} cached records, "
            f"{self.measured}/{self.evaluations} measured)"
        )
