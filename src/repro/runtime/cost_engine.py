"""The batched plan-evaluation engine for measured search costs.

The paper's search economics are "spend expensive work only where it pays":
analytic models prune the space and only the survivors are measured.  This
module applies the same economics to the *measurement* side of a search:

* candidates are evaluated in **batches** — a search round hands the whole
  candidate list to :meth:`CostEngine.batch`, which deduplicates by
  :func:`repro.wht.encoding.plan_key` and routes the remaining work through a
  pluggable :class:`~repro.runtime.backends.ExecutionBackend` (serial or
  multiprocess fan-out);
* every measured cost lands in a **persistent per-plan cost cache** in the
  session's :class:`~repro.runtime.store.CampaignStore`, keyed by
  ``(machine content hash, plan key)`` — re-running a figure or resuming a
  search in a later process skips every already-measured candidate;
* the noise draw of each measurement is seeded per plan
  (``derive_seed(seed, "plan-cost", plan_key)``), so the cost of a plan is
  one well-defined number independent of evaluation order, batch shape or
  backend — which is what makes serial, multiprocess and cached evaluation
  bit-identical.  (On a noise-free machine the engine matches the plain
  :class:`~repro.search.costs.MeasuredCyclesCost` exactly as well; with noise
  the engine's per-plan seeding replaces that cost's order-dependent shared
  generator.)

The engine is a drop-in cost function: it is callable on a single plan and
exposes ``batch`` for the search strategies' batched evaluation protocol,
plus the ``evaluations`` / ``measured`` counter pair so pruning reports can
distinguish cache hits from real simulation work.
"""

from __future__ import annotations

from typing import Sequence

from repro.machine.machine import PreparedPlanCache, SimulatedMachine
from repro.runtime.backends import ExecutionBackend, SerialBackend, WorkUnit
from repro.runtime.store import CampaignStore, CostTableKey, NullStore, machine_config_hash
from repro.util.rng import derive_seed
from repro.wht.encoding import plan_key
from repro.wht.plan import Plan

__all__ = ["CostEngine"]


class CostEngine:
    """Batched, cached measured-cycles evaluation of candidate plans.

    Parameters
    ----------
    machine:
        The simulated machine to measure on.  Unless it already has one, a
        :class:`~repro.machine.machine.PreparedPlanCache` is attached so
        repeated preparations within the engine's lifetime are also reused.
    backend:
        How candidate batches execute (default:
        :class:`~repro.runtime.backends.SerialBackend`).
    store:
        Where the per-plan cost table persists (default:
        :class:`~repro.runtime.store.NullStore`, i.e. in-memory for the
        engine's lifetime only).  With a
        :class:`~repro.runtime.store.DiskStore` the cache survives across
        processes.
    seed:
        Seed of the per-plan noise derivation.  Engines sharing (machine
        configuration, metric, seed) share cached costs.
    """

    metric = "cycles"

    def __init__(
        self,
        machine: SimulatedMachine,
        *,
        backend: ExecutionBackend | None = None,
        store: CampaignStore | None = None,
        seed: int = 0,
        prepared_cache_size: int = 256,
    ):
        self.machine = machine
        if machine.prepared_cache is None and prepared_cache_size > 0:
            machine.prepared_cache = PreparedPlanCache(prepared_cache_size)
        self.backend = backend if backend is not None else SerialBackend()
        self.store = store if store is not None else NullStore()
        self.seed = int(seed)
        self.key = CostTableKey(
            machine_hash=machine_config_hash(machine.config),
            metric=self.metric,
            seed=self.seed,
        )
        self._costs: dict[str, float] = self.store.get_cost_table(self.key) or {}
        self._flushes = 0
        #: Plan-cost requests served (cache hits included).
        self.evaluations = 0
        #: Plans actually prepared and measured (cache misses).
        self.measured = 0

    #: Merge-read amortisation.  The store holds one table per engine key and
    #: every write serialises the whole table, so each measuring batch pays
    #: one table write — that is the durability contract (``batch`` returns
    #: only after its new costs are persisted; nothing is lost on a clean or
    #: dirty exit).  The *read*-and-merge half exists only to pick up
    #: concurrent writers and is amortised to every ``REMERGE_EVERY``-th
    #: flush (always the first, so sequential engine handoffs stay
    #: lossless); a concurrent writer's entries clobbered between re-merges
    #: are simply re-measured on demand — identical keys carry identical
    #: values, so nothing can be corrupted, only re-done.  Per-plan scalar
    #: loops over a large persistent table pay one table write per
    #: measurement; prefer ``batch`` for bulk evaluation.
    REMERGE_EVERY = 16

    # -- evaluation --------------------------------------------------------------

    def _noise_seed(self, key: str) -> int:
        return derive_seed(self.seed, "plan-cost", key)

    def batch(self, plans: Sequence[Plan]) -> list[float]:
        """Costs of ``plans`` in order (one measurement per *distinct* plan).

        Duplicates within the batch and plans already in the cost cache are
        served without touching the machine; the remaining distinct plans go
        through the execution backend as one unit list and their costs are
        persisted to the store before returning.
        """
        keys = [plan_key(plan) for plan in plans]
        self.evaluations += len(keys)
        missing: dict[str, Plan] = {}
        for key, plan in zip(keys, plans):
            if key not in self._costs and key not in missing:
                missing[key] = plan
        if missing:
            units = [
                WorkUnit(plan=plan, noise_seed=self._noise_seed(key))
                for key, plan in missing.items()
            ]
            measurements = self.backend.measure_units(self.machine, units)
            self.measured += len(units)
            for key, measurement in zip(missing, measurements):
                self._costs[key] = float(measurement.cycles)
            self.flush()
        return [self._costs[key] for key in keys]

    def __call__(self, plan: Plan) -> float:
        """Scalar cost-function interface (a batch of one)."""
        return self.batch([plan])[0]

    # -- persistence -------------------------------------------------------------

    def flush(self) -> None:
        """Merge this engine's costs into the store's table and write it back.

        ``batch`` calls this after every round that measured something, so
        every cost ever returned is already persisted; the method is public
        for symmetry and tests.  The read-merge step keeps sequential engine
        handoffs lossless — an engine created after another's flush starts
        from the merged table, and each engine's first flush always merges —
        and is amortised per :data:`REMERGE_EVERY`.
        """
        if self._flushes % self.REMERGE_EVERY == 0:
            stored = self.store.get_cost_table(self.key)
            if stored:
                stored.update(self._costs)
                self._costs = stored
        self._flushes += 1
        self.store.put_cost_table(self.key, self._costs)

    # -- introspection -----------------------------------------------------------

    @property
    def cached_costs(self) -> int:
        """Number of plan costs currently known to the engine."""
        return len(self._costs)

    def __repr__(self) -> str:
        return (
            f"CostEngine(machine={self.machine.config.name!r}, "
            f"backend={getattr(self.backend, 'name', type(self.backend).__name__)}, "
            f"store={self.store!r}, seed={self.seed}, "
            f"{self.cached_costs} cached costs, "
            f"{self.measured}/{self.evaluations} measured)"
        )
