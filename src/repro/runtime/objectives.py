"""Composable search objectives over named cost metrics.

A search strategy needs one scalar per candidate plan (lower is better).  An
:class:`Objective` says how that scalar is derived from a plan's
:class:`~repro.runtime.metrics.CostRecord`: which metrics it needs
(``metrics``) and how they reduce to one number (``value``).  The engine uses
``metrics`` to fetch exactly the required values — measuring, model-scoring
or cache-hitting per metric — and then applies the reduction.

Three shapes cover the paper's whole evaluation:

* :class:`MetricObjective` — optimise one metric (``"cycles"`` is the WHT
  package's classic search; ``"model_instructions"`` is the cheap stage of
  the pruned search).
* :class:`WeightedObjective` — a linear combination of metrics; the paper's
  combined model ``alpha * instructions + beta * l1_misses`` is
  :meth:`WeightedObjective.combined` (measured counters) or
  :meth:`WeightedObjective.model_combined` (analytic models).
* :class:`CustomObjective` — an arbitrary reduction of named metrics for
  anything the algebra above does not express (ratios, maxima, penalties).

:func:`resolve_objective` normalises what users pass around: a metric name
string becomes a :class:`MetricObjective`, a
:class:`~repro.models.combined.CombinedModel` becomes the corresponding
weighted objective, and objective instances pass through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.models.combined import CombinedModel
from repro.runtime.metrics import metric_spec

__all__ = [
    "Objective",
    "MetricObjective",
    "WeightedObjective",
    "CustomObjective",
    "resolve_objective",
]


class Objective:
    """How a multi-metric cost record reduces to one scalar cost.

    Subclasses define ``metrics`` (the metric names they consume, validated
    against the registry) and :meth:`value`.  Objectives are small immutable
    value objects; they carry no machine or store — binding to an engine
    happens via :meth:`repro.runtime.cost_engine.CostEngine.cost`.
    """

    #: Metric names this objective needs, in reduction order.
    metrics: tuple[str, ...] = ()

    def value(self, values: Mapping[str, float]) -> float:
        """The scalar cost of one record (``values`` maps metric -> value)."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable form for reports and ``repr``."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()!r})"


@dataclass(frozen=True, repr=False)
class MetricObjective(Objective):
    """Optimise a single named metric."""

    metric: str

    def __post_init__(self) -> None:
        metric_spec(self.metric)  # raises KeyError for unknown names
        object.__setattr__(self, "metrics", (self.metric,))

    def value(self, values: Mapping[str, float]) -> float:
        return float(values[self.metric])

    def describe(self) -> str:
        return self.metric


@dataclass(frozen=True, repr=False, init=False)
class WeightedObjective(Objective):
    """A linear combination ``sum_i w_i * metric_i`` of named metrics.

    The term order follows the mapping passed to the constructor, so the
    floating-point summation order — and therefore the exact value — is
    well defined and reproducible.
    """

    weights: tuple[tuple[str, float], ...]

    def __init__(self, weights: Mapping[str, float]):
        if not weights:
            raise ValueError("a weighted objective needs at least one metric")
        pairs = tuple((str(name), float(weight)) for name, weight in weights.items())
        for name, _ in pairs:
            metric_spec(name)
        object.__setattr__(self, "weights", pairs)
        object.__setattr__(self, "metrics", tuple(name for name, _ in pairs))

    @classmethod
    def combined(
        cls,
        alpha: float = 1.0,
        beta: float = 0.05,
        instructions: str = "instructions",
        misses: str = "l1_misses",
    ) -> "WeightedObjective":
        """The paper's combined model over *measured* counters."""
        return cls({instructions: alpha, misses: beta})

    @classmethod
    def model_combined(cls, alpha: float = 1.0, beta: float = 0.05) -> "WeightedObjective":
        """The paper's combined model over the *analytic* batch models."""
        return cls.combined(
            alpha, beta, instructions="model_instructions", misses="model_l1_misses"
        )

    @classmethod
    def from_model(
        cls,
        model: CombinedModel,
        instructions: str = "instructions",
        misses: str = "l1_misses",
    ) -> "WeightedObjective":
        """The weighted objective matching a fitted :class:`CombinedModel`."""
        return cls.combined(model.alpha, model.beta, instructions, misses)

    def value(self, values: Mapping[str, float]) -> float:
        total = 0.0
        for name, weight in self.weights:
            total += weight * float(values[name])
        return total

    def describe(self) -> str:
        return " + ".join(f"{weight:g}*{name}" for name, weight in self.weights)


@dataclass(frozen=True, repr=False)
class CustomObjective(Objective):
    """An arbitrary reduction of named metric values.

    ``reducer`` receives the metric -> value mapping of one record and
    returns the scalar cost.  Use this for objectives outside the linear
    algebra, e.g. cycles-per-instruction or thresholded penalties.
    """

    metric_names: tuple[str, ...]
    reducer: Callable[[Mapping[str, float]], float]
    name: str = "custom"

    def __post_init__(self) -> None:
        names = tuple(self.metric_names)
        if not names:
            raise ValueError("a custom objective needs at least one metric")
        for metric in names:
            metric_spec(metric)
        if not callable(self.reducer):
            raise TypeError("reducer must be callable")
        object.__setattr__(self, "metric_names", names)
        object.__setattr__(self, "metrics", names)

    def value(self, values: Mapping[str, float]) -> float:
        return float(self.reducer(values))

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.metrics)})"


def resolve_objective(spec: "str | Objective | CombinedModel") -> Objective:
    """Normalise an objective spec into an :class:`Objective`.

    A string names a single metric, a :class:`CombinedModel` becomes the
    corresponding measured-counter weighted objective, and objective
    instances pass through unchanged.
    """
    if isinstance(spec, Objective):
        return spec
    if isinstance(spec, str):
        try:
            return MetricObjective(spec)
        except KeyError as exc:
            raise ValueError(str(exc.args[0])) from None
    if isinstance(spec, CombinedModel):
        return WeightedObjective.from_model(spec)
    raise TypeError(f"cannot interpret {spec!r} as an objective")
