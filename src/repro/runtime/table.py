"""Column-oriented measurement tables.

:class:`MeasurementTable` is the durable unit of the runtime: one campaign's
worth of measurements, stored column-wise so the statistical analysis
(histograms, correlations, pruning curves) can operate on whole arrays.  It
lives in the runtime layer (rather than the experiments layer) because the
execution backends produce it and the campaign stores persist it; the
experiments layer re-exports it for backwards compatibility.

Tables round-trip exactly through :meth:`MeasurementTable.as_dict` /
:meth:`MeasurementTable.from_dict`: plans are rendered in the WHT package's
grammar and re-parsed, and the float columns survive JSON encoding bit-for-bit
(JSON renders doubles with round-trip precision).  :class:`repro.runtime.store.DiskStore`
builds directly on this pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.machine.measurement import Measurement
from repro.wht.grammar import parse_plan
from repro.wht.plan import Plan

__all__ = ["TABLE_COLUMNS", "MeasurementTable"]

#: Column names exposed by :class:`MeasurementTable`.
TABLE_COLUMNS = (
    "cycles",
    "instructions",
    "l1_misses",
    "l2_misses",
    "l1_accesses",
    "loads",
    "stores",
    "arithmetic_ops",
)


@dataclass(frozen=True)
class MeasurementTable:
    """Column-oriented view of a list of measurements."""

    n: int
    plans: tuple[Plan, ...]
    columns: dict[str, np.ndarray]
    machine: str = "default"

    def __post_init__(self) -> None:
        for name, column in self.columns.items():
            if column.shape[0] != len(self.plans):
                raise ValueError(
                    f"column {name!r} has {column.shape[0]} rows for "
                    f"{len(self.plans)} plans"
                )

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_measurements(cls, measurements: Sequence[Measurement]) -> "MeasurementTable":
        """Build a table from a nonempty measurement list (all of one size)."""
        if not measurements:
            raise ValueError("cannot build a table from zero measurements")
        sizes = {m.n for m in measurements}
        if len(sizes) != 1:
            raise ValueError(f"measurements mix transform sizes: {sorted(sizes)}")
        columns = {
            name: np.array([getattr(m, name) for m in measurements], dtype=float)
            for name in TABLE_COLUMNS
        }
        return cls(
            n=measurements[0].n,
            plans=tuple(m.plan for m in measurements),
            columns=columns,
            machine=measurements[0].machine,
        )

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.plans)

    def column(self, name: str) -> np.ndarray:
        """One column by name (see ``TABLE_COLUMNS``)."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown column {name!r}; available: {sorted(self.columns)}"
            ) from exc

    @property
    def cycles(self) -> np.ndarray:
        """Simulated cycle counts."""
        return self.columns["cycles"]

    @property
    def instructions(self) -> np.ndarray:
        """Retired instruction counts."""
        return self.columns["instructions"]

    @property
    def l1_misses(self) -> np.ndarray:
        """L1 data-cache miss counts."""
        return self.columns["l1_misses"]

    @property
    def l2_misses(self) -> np.ndarray:
        """L2 data-cache miss counts."""
        return self.columns["l2_misses"]

    def filtered(self, mask: np.ndarray) -> "MeasurementTable":
        """A new table containing only the rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape[0] != len(self.plans):
            raise ValueError(
                f"mask of length {mask.shape[0]} does not match table of length "
                f"{len(self.plans)}"
            )
        return MeasurementTable(
            n=self.n,
            plans=tuple(p for p, keep in zip(self.plans, mask) if keep),
            columns={name: col[mask] for name, col in self.columns.items()},
            machine=self.machine,
        )

    def combined_model_values(self, alpha: float, beta: float) -> np.ndarray:
        """The paper's combined metric for every row."""
        return alpha * self.instructions + beta * self.l1_misses

    def best_row(self) -> int:
        """Index of the row with the fewest cycles."""
        return int(np.argmin(self.cycles))

    # -- serialisation -----------------------------------------------------------

    def as_dict(self) -> dict:
        """Plain-Python view (plans rendered as strings) for serialisation."""
        return {
            "n": self.n,
            "machine": self.machine,
            "plans": [str(p) for p in self.plans],
            "columns": {name: col.tolist() for name, col in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MeasurementTable":
        """Inverse of :meth:`as_dict`: reconstruct a table from plain Python.

        Plans are re-parsed from the grammar strings and every column becomes
        a float array again, so ``from_dict(as_dict(t))`` equals ``t`` exactly
        (plan equality and bit-identical columns).
        """
        try:
            n = int(payload["n"])
            plan_strings = payload["plans"]
            raw_columns = payload["columns"]
        except KeyError as exc:
            raise ValueError(f"table payload missing required key: {exc}") from exc
        plans = tuple(parse_plan(text) for text in plan_strings)
        for plan in plans:
            if plan.n != n:
                raise ValueError(
                    f"plan {plan} has exponent {plan.n}, table declares n={n}"
                )
        columns = {
            str(name): np.asarray(values, dtype=float)
            for name, values in raw_columns.items()
        }
        return cls(
            n=n,
            plans=plans,
            columns=columns,
            machine=str(payload.get("machine", "default")),
        )

    def equals(self, other: "MeasurementTable") -> bool:
        """Exact equality: same plans, same machine, bit-identical columns."""
        return (
            self.n == other.n
            and self.machine == other.machine
            and self.plans == other.plans
            and set(self.columns) == set(other.columns)
            and all(
                np.array_equal(self.columns[name], other.columns[name])
                for name in self.columns
            )
        )
