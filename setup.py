"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed editable in offline environments whose setuptools
lacks the PEP 660 editable-wheel path (no ``wheel`` package available).
"""

from setuptools import setup

setup()
